"""Tests for synthetic demand sources."""

import pytest

from repro.traces.workload import (
    CbrDemand,
    OnOffRandomDemand,
    ScheduledDemand,
)


def test_cbr_long_run_rate():
    d = CbrDemand(rate_bps=10e6)
    total = sum(d.bits(sf) for sf in range(1_000))  # one second
    assert total == pytest.approx(10e6, rel=0.001)


def test_cbr_fractional_carry():
    d = CbrDemand(rate_bps=1_500)  # 1.5 bits per subframe
    bits = [d.bits(sf) for sf in range(4)]
    assert bits == [1, 2, 1, 2]


def test_cbr_validation():
    with pytest.raises(ValueError):
        CbrDemand(rate_bps=-1)


def test_scheduled_steps():
    d = ScheduledDemand([(0.0, 40e6), (2.0, 6e6)])
    assert d.rate_at(0) == 40e6
    assert d.rate_at(1_999) == 40e6
    assert d.rate_at(2_000) == 6e6


def test_scheduled_zero_before_first_entry():
    d = ScheduledDemand([(1.0, 5e6)])
    assert d.rate_at(0) == 0.0
    assert sum(d.bits(sf) for sf in range(500)) == 0


def test_scheduled_validation():
    with pytest.raises(ValueError):
        ScheduledDemand([])
    with pytest.raises(ValueError):
        ScheduledDemand([(1.0, 1e6), (1.0, 2e6)])


def test_on_off_classmethod_builds_periodic_schedule():
    d = ScheduledDemand.on_off(period_s=8.0, on_s=4.0, rate_bps=60e6,
                               total_s=40.0)
    assert d.rate_at(1_000) == 60e6    # inside first on period
    assert d.rate_at(5_000) == 0.0     # off
    assert d.rate_at(9_000) == 60e6    # second period
    with pytest.raises(ValueError):
        ScheduledDemand.on_off(period_s=2.0, on_s=4.0, rate_bps=1e6,
                               total_s=10.0)


def test_on_off_random_mean_rate():
    d = OnOffRandomDemand(mean_on_s=1.0, mean_off_s=1.0,
                          rate_range_bps=(4e6, 4e6), seed=7)
    total = sum(d.bits(sf) for sf in range(200_000))  # 200 s
    mean_bps = total / 200.0
    assert mean_bps == pytest.approx(2e6, rel=0.25)  # half duty cycle


def test_on_off_random_alternates():
    d = OnOffRandomDemand(mean_on_s=0.05, mean_off_s=0.05, seed=1)
    states = [d.bits(sf) > 0 for sf in range(20_000)]
    assert any(states) and not all(states)


def test_on_off_validation():
    with pytest.raises(ValueError):
        OnOffRandomDemand(mean_on_s=0)
    with pytest.raises(ValueError):
        OnOffRandomDemand(rate_range_bps=(5e6, 1e6))
