"""Edge cases of the PBE client and monitor plumbing."""

import pytest

from repro.core.client import PbeClient
from repro.monitor.pbe import PbeMonitor
from repro.net.link import PacketSink
from repro.net.packet import Packet
from repro.net.sim import Simulator
from repro.phy.dci import DciMessage, SubframeRecord

OWN = 100


def _setup(sim, **client_kwargs):
    monitor = PbeMonitor(OWN, {0: 100}, primary_cell=0,
                         own_rate_hint=lambda: (1000, 1e-6))
    sink = PacketSink(sim)
    client = PbeClient(sim, 1, sink, monitor, **client_kwargs)
    return client, monitor, sink


def _feed(monitor, subframe, prbs=50):
    rec = SubframeRecord(subframe, 0, 100)
    if prbs:
        rec.messages.append(DciMessage(subframe, 0, OWN, prbs, 12, 2,
                                       tbs_bits=prbs * 1000))
    monitor.decoder_callback(0)(rec)


def test_default_rtprop_used_without_srtt_meta():
    sim = Simulator()
    client, monitor, sink = _setup(sim, default_rtprop_us=33_000)
    _feed(monitor, 0)
    packet = Packet(1, 0, sent_time_us=0)  # no srtt_us in meta
    sim.run_for(25_000)
    client.receive(packet)
    assert sink.packets  # feedback produced without crashing
    assert client._rtprop_us(packet) == 33_000


def test_negative_delay_margin_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        _setup(sim, delay_margin_us=-1)


def test_zero_margin_client_flaps_on_jitter():
    """The §4.2.2 motivation: with Dth = Dprop, HARQ jitter constantly
    trips the Internet-state switch."""
    sim = Simulator()
    client, monitor, _ = _setup(sim, delay_margin_us=0)
    for sf in range(40):
        _feed(monitor, sf)
    seq = 0
    # Alternate clean packets and 8 ms-retransmitted bursts longer
    # than Npkt = 6·Ct/MSS ≈ 45 packets at this cell's capacity.
    for burst in range(40):
        delay = 20_000 if burst % 2 == 0 else 28_000
        for _ in range(60):
            sim.run_for(1_000)
            p = Packet(1, seq, sent_time_us=sim.now - delay)
            p.meta["srtt_us"] = 40_000
            client.receive(p)
            seq += 1
    assert any(state == "internet" for _, state in client.state_changes)


def test_monitor_report_averaging_window_override():
    monitor = PbeMonitor(OWN, {0: 100}, primary_cell=0,
                         own_rate_hint=lambda: (1000, 1e-6),
                         averaging_window_override=1)
    for sf in range(39):
        _feed(monitor, sf, prbs=10)
    _feed(monitor, 39, prbs=90)
    # Window override 1: only the last subframe counts.
    report = monitor.report(rtprop_subframes=40)
    assert report.physical_capacity == pytest.approx(
        1000 * 100, rel=0.02)


def test_monitor_rejects_bad_override():
    with pytest.raises(ValueError):
        PbeMonitor(OWN, {0: 100}, primary_cell=0,
                   own_rate_hint=lambda: (1000, 1e-6),
                   averaging_window_override=0)


def test_unfiltered_monitor_counts_every_user():
    monitor = PbeMonitor(OWN, {0: 100}, primary_cell=0,
                         own_rate_hint=lambda: (1000, 1e-6),
                         filter_control_users=False)
    for sf in range(40):
        rec = SubframeRecord(sf, 0, 100)
        rec.messages.append(DciMessage(sf, 0, OWN, 50, 12, 2,
                                       tbs_bits=50_000))
        # A one-subframe 4-PRB control burst every 4 subframes.
        if sf % 4 == 0:
            rec.messages.append(DciMessage(sf, 0, 9_000 + sf, 4, 4, 1,
                                           tbs_bits=1_000))
        monitor.decoder_callback(0)(rec)
    report = monitor.report(rtprop_subframes=40)
    assert report.users_per_cell[0] > 5  # bursts all counted in N
