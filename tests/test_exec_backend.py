"""ExecBackend abstraction: pool veneer equivalence + the job wire.

The backend refactor's contract is that routing jobs through an
explicit :class:`ProcessPoolBackend` changes *nothing* about results,
and that any fleet-capable job survives a JSON round trip with its
fingerprint (the key for leases, results and the cache) intact.
"""

import concurrent.futures
import json

import pytest

from repro.exec import (
    Job,
    ParallelRunner,
    ProbeJob,
    ProcessPoolBackend,
    canonical_json,
    execute_job,
    job_from_wire,
    job_to_wire,
    register_job_kind,
    wire_kind_of,
)
from repro.harness import Scenario
from repro.phy.carrier import CarrierConfig


def tiny_scenario(seed=7, **overrides):
    base = dict(name=f"backend-{seed}",
                carriers=[CarrierConfig(0, 10.0)],
                aggregated_cells=1, mean_sinr_db=14.0,
                duration_s=1.0, seed=seed)
    base.update(overrides)
    return Scenario(**base)


def pool_works() -> bool:
    try:
        with concurrent.futures.ProcessPoolExecutor(1) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


def json_round_trip(wire: dict) -> dict:
    """What a fleet queue file does to a wire entry."""
    return json.loads(json.dumps(wire))


# ---------------------------------------------------------------------
# Wire format.

def test_flow_job_wire_round_trip_preserves_fingerprint():
    job = Job(tiny_scenario(seed=11), "pbe",
              spec_overrides={"start_s": 0.25})
    wire = json_round_trip(job_to_wire(job))
    rebuilt = job_from_wire(wire)
    assert isinstance(rebuilt, Job)
    assert rebuilt.fingerprint() == job.fingerprint()
    assert rebuilt.label == job.label
    assert wire["fingerprint"] == job.fingerprint()


def test_flow_job_wire_survives_tuple_and_int_key_fields():
    # JSON turns tuples into lists and int dict keys into strings;
    # the wire loader must hand execution back the original shapes.
    job = Job(tiny_scenario(
        seed=12, background_rate_range=(2e6, 8e6),
        control_arrivals_by_cell={0: 40.0}), "bbr")
    rebuilt = job_from_wire(json_round_trip(job_to_wire(job)))
    assert rebuilt.fingerprint() == job.fingerprint()
    assert rebuilt.scenario.background_rate_range == (2e6, 8e6)
    assert list(rebuilt.scenario.control_arrivals_by_cell) == [0]


def test_flow_job_wire_execution_is_byte_identical():
    job = Job(tiny_scenario(seed=13), "pbe")
    rebuilt = job_from_wire(json_round_trip(job_to_wire(job)))
    assert canonical_json(execute_job(rebuilt)) \
        == canonical_json(execute_job(job))


def test_metro_shard_wire_round_trip_preserves_fingerprint():
    from repro.metro import resolve_set
    from repro.metro.driver import shard_jobs
    job = shard_jobs(resolve_set("smoke"))[0]
    rebuilt = job_from_wire(json_round_trip(job_to_wire(job)))
    assert rebuilt.fingerprint() == job.fingerprint()
    assert rebuilt.label == job.label


def test_probe_job_wire_round_trip_and_execution():
    job = ProbeJob(params={"id": "a", "value": 3})
    rebuilt = job_from_wire(json_round_trip(job_to_wire(job)))
    assert rebuilt.fingerprint() == job.fingerprint()
    assert execute_job(rebuilt) == {"probe": "a", "value": 3}


def test_probe_job_failure_raises():
    with pytest.raises(RuntimeError, match="asked to fail"):
        ProbeJob(params={"id": "x", "fail": True}).execute()


def test_unregistered_job_type_is_rejected():
    class Mystery:
        pass

    assert wire_kind_of(Mystery()) is None
    with pytest.raises(TypeError, match="no registered wire kind"):
        job_to_wire(Mystery())


def test_unknown_wire_kind_is_rejected():
    with pytest.raises(ValueError, match="unknown wire job kind"):
        job_from_wire({"kind": "nope", "spec": {}})


def test_register_job_kind_extends_the_wire():
    class EchoJob:
        def __init__(self, value):
            self.value = value

        label = "echo"

        def to_dict(self):
            return {"kind": "echo-test", "value": self.value}

        def fingerprint(self):
            return "ab" * 16

    register_job_kind("echo-test",
                      lambda spec: EchoJob(spec["value"]))
    wire = json_round_trip(job_to_wire(EchoJob(9)))
    assert job_from_wire(wire).value == 9


# ---------------------------------------------------------------------
# ProcessPoolBackend: thin veneer, identical results.

def test_pool_backend_runs_probe_jobs():
    if not pool_works():
        pytest.skip("no working process pool on this platform")
    backend = ProcessPoolBackend(workers=2)
    try:
        handles = [backend.submit(ProbeJob(params={"id": i,
                                                   "value": i * 10}))
                   for i in range(3)]
        pending = set(handles)
        out = {}
        while pending:
            done = backend.wait(pending, timeout=60)
            for handle in done:
                payload = backend.result(handle)
                out[payload["probe"]] = payload["value"]
                assert backend.done(handle)
            pending -= done
        assert out == {0: 0, 1: 10, 2: 20}
    finally:
        backend.shutdown()


def test_runner_with_explicit_pool_backend_matches_default():
    if not pool_works():
        pytest.skip("no working process pool on this platform")
    jobs = [Job(tiny_scenario(seed=21), "pbe"),
            Job(tiny_scenario(seed=22), "bbr")]
    default = ParallelRunner(jobs=2).run(jobs)
    explicit = ParallelRunner(
        jobs=2, backend=ProcessPoolBackend(workers=2)).run(jobs)
    for a, b in zip(default, explicit):
        assert canonical_json(a) == canonical_json(b)


def test_exec_elapsed_defaults_to_submitted_elapsed():
    backend = ProcessPoolBackend.__new__(ProcessPoolBackend)
    assert backend.exec_elapsed(object(), 3.5) == 3.5
