"""Tests for the BER/TBLER error model (paper Figure 6)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.phy.error import (
    MAX_BER,
    MIN_BER,
    block_error_rate,
    retransmission_ber,
    sinr_to_ber,
)


def test_ber_calibration_anchors():
    # The paper's measurement anchors: ~1e-6 at the strong location,
    # ~5e-6 at the weak one.
    assert sinr_to_ber(13.0) == pytest.approx(1e-6, rel=0.05)
    assert sinr_to_ber(-2.0) == pytest.approx(5e-6, rel=0.05)


def test_ber_decreases_with_sinr():
    bers = [sinr_to_ber(s) for s in range(-10, 40, 2)]
    assert bers == sorted(bers, reverse=True)


def test_ber_clamped():
    assert sinr_to_ber(-100.0) == MAX_BER
    assert sinr_to_ber(200.0) == MIN_BER


def test_block_error_rate_formula():
    # TBLER = 1 - (1-p)^L exactly.
    p, L = 3e-6, 30_000
    expected = 1 - (1 - p) ** L
    assert block_error_rate(p, L) == pytest.approx(expected, rel=1e-9)


def test_block_error_rate_paper_figure6b_scale():
    # Figure 6(b): at p = 5e-6 a 70 kbit TB fails ~30% of the time.
    assert block_error_rate(5e-6, 70_000) == pytest.approx(0.30, abs=0.03)
    # and a 10 kbit TB at p = 1e-6 is ~1%.
    assert block_error_rate(1e-6, 10_000) == pytest.approx(0.01, abs=0.005)


def test_block_error_rate_edges():
    assert block_error_rate(0.0, 10_000) == 0.0
    assert block_error_rate(1e-6, 0) == 0.0
    with pytest.raises(ValueError):
        block_error_rate(-0.1, 10)
    with pytest.raises(ValueError):
        block_error_rate(1.5, 10)
    with pytest.raises(ValueError):
        block_error_rate(1e-6, -1)


@given(st.floats(min_value=1e-9, max_value=1e-3),
       st.integers(min_value=0, max_value=10**6))
def test_block_error_rate_is_probability(p, bits):
    tbler = block_error_rate(p, bits)
    assert 0.0 <= tbler <= 1.0


@given(st.floats(min_value=1e-9, max_value=1e-4),
       st.integers(min_value=1, max_value=10**5))
def test_block_error_rate_monotonic_in_size(p, bits):
    assert block_error_rate(p, 2 * bits) >= block_error_rate(p, bits)


def test_retransmission_combining_gain():
    base = 1e-5
    assert retransmission_ber(base, 0) == base
    assert retransmission_ber(base, 1) == pytest.approx(1e-6)
    assert retransmission_ber(base, 2) == pytest.approx(1e-7)


def test_retransmission_rejects_negative_attempt():
    with pytest.raises(ValueError):
        retransmission_ber(1e-6, -1)
