"""Tests for scenario definitions and the 40-location sweep."""

import pytest

from repro.harness.scenarios import (
    Scenario,
    default_carriers,
    representative_locations,
    stationary_locations,
)


def test_default_carriers_match_paper_cells():
    carriers = default_carriers()
    assert len(carriers) == 3
    assert carriers[0].total_prbs == 100   # 20 MHz primary
    assert carriers[0].frequency_ghz == pytest.approx(1.94)


def test_scenario_device_cells():
    s = Scenario(name="x", aggregated_cells=2)
    assert s.device_cells == [0, 1]


def test_scenario_validation():
    with pytest.raises(ValueError):
        Scenario(name="x", aggregated_cells=4)
    with pytest.raises(ValueError):
        Scenario(name="x", duration_s=0)


def test_busy_controls_arrival_rate():
    busy = Scenario(name="b", busy=True)
    idle = Scenario(name="i", busy=False)
    assert busy.control_arrivals_per_subframe > \
        idle.control_arrivals_per_subframe


def test_channel_is_reproducible():
    s = Scenario(name="x", mean_sinr_db=17.0, fading_std_db=1.0, seed=3)
    a, b = s.channel(), s.channel()
    assert [a.sinr_db(t) for t in range(5)] == \
        [b.sinr_db(t) for t in range(5)]


def test_with_overrides():
    s = Scenario(name="x", duration_s=8.0)
    s2 = s.with_overrides(duration_s=2.0)
    assert s2.duration_s == 2.0
    assert s.duration_s == 8.0


def test_sweep_composition_matches_table1():
    locations = stationary_locations()
    assert len(locations) == 40
    busy = [s for s in locations if s.busy]
    idle = [s for s in locations if not s.busy]
    assert len(busy) == 25 and len(idle) == 15
    # All aggregation levels represented.
    assert {s.aggregated_cells for s in locations} == {1, 2, 3}
    # Busy locations have background competition, idle ones do not.
    assert all(s.background_users > 0 for s in busy)
    assert all(s.background_users == 0 for s in idle)
    # Unique names and seeds.
    assert len({s.name for s in locations}) == 40
    assert len({s.seed for s in locations}) == 40


def test_representative_locations_cover_figures():
    reps = representative_locations()
    assert len(reps) == 6
    assert any("idle" in k for k in reps)
    assert any("outdoor" in k for k in reps)
    assert {s.aggregated_cells for s in reps.values()} == {1, 2, 3}
