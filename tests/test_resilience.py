"""Tests for the resilience sweep driver and graceful degradation."""

import numpy as np
import pytest

from repro.cli import main
from repro.harness import run_flow
from repro.harness.experiments.resilience import (
    fault_dict,
    resilience_jobs,
    resilience_scenario,
    run_resilience,
)
from repro.harness.metrics import windowed_throughput_bps


def test_jobs_grid_covers_every_cell():
    jobs = resilience_jobs(schemes=("pbe", "bbr"),
                           miss_rates=(0.0, 0.2), outages_ms=(0, 500),
                           duration_s=2.0)
    assert len(jobs) == 8
    clean = [j for j in jobs if not j.spec_overrides]
    assert len(clean) == 2  # one unimpaired reference per scheme
    impaired = [j for j in jobs if j.spec_overrides]
    for job in impaired:
        faults = job.spec_overrides["faults"]
        assert faults["ack_loss_rate"] > 0
    assert len({j.fingerprint() for j in jobs}) == 8


def test_jobs_grid_rejects_empty_axes():
    with pytest.raises(ValueError):
        resilience_jobs(schemes=())
    with pytest.raises(ValueError):
        resilience_jobs(miss_rates=())


def test_fault_dict_schedules_outage_at_midpoint():
    assert fault_dict(0.0, 0, 4.0) is None
    faults = fault_dict(0.2, 500, 4.0, fault_seed=7)
    assert faults["dci_miss_rate"] == 0.2
    assert faults["outages"] == [[1750, 500]]
    assert faults["seed"] == 7


def test_fingerprints_stable_under_json_roundtrip():
    import json

    from repro.exec.job import canonical_json

    jobs = resilience_jobs(schemes=("pbe",), miss_rates=(0.2,),
                           outages_ms=(500,), duration_s=2.0)
    job = jobs[0]
    roundtripped = json.loads(canonical_json(job.to_dict()))
    assert canonical_json(roundtripped) == canonical_json(job.to_dict())


def test_run_resilience_small_grid(tmp_path):
    result = run_resilience(schemes=("pbe",), miss_rates=(0.0,),
                            outages_ms=(0, 200), duration_s=0.5,
                            cache_dir=tmp_path / "cache")
    assert len(result.entries) == 2
    clean = result.clean_for("pbe")
    assert clean is not None and clean.is_clean
    impaired = [e for e in result.entries if not e.is_clean]
    assert impaired[0].outage_ms == 200
    assert impaired[0].fault_stats is not None
    table = result.format()
    assert "Resilience sweep" in table
    assert "fallback (s)" in table
    # Rerun hits the cache and reproduces the identical entries.
    again = run_resilience(schemes=("pbe",), miss_rates=(0.0,),
                           outages_ms=(0, 200), duration_s=0.5,
                           cache_dir=tmp_path / "cache")
    assert [e.summary.average_throughput_bps for e in again.entries] \
        == [e.summary.average_throughput_bps for e in result.entries]


def test_cli_resilience_command(capsys, tmp_path):
    args = ["resilience", "--schemes", "pbe", "--miss", "0",
            "--outage-ms", "0,200", "--duration", "0.5",
            "--cache-dir", str(tmp_path / "cache")]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "Resilience sweep" in out
    assert "pbe" in out


# ----------------------------------------------------------------------
# Acceptance: graceful degradation end to end
# ----------------------------------------------------------------------
def test_pbe_degrades_gracefully_and_recovers():
    """20% DCI miss + one 500 ms decoder outage (the issue's bar).

    The flow must complete without raising, spend time on the
    delay-based fallback during the outage, and recover to within 10%
    of the unimpaired run's throughput once reports resume.
    """
    duration_s = 3.0
    scenario = resilience_scenario(duration_s=duration_s, base_seed=400)
    clean = run_flow(scenario, "pbe")
    faults = fault_dict(0.2, 500, duration_s, fault_seed=7)
    impaired = run_flow(scenario, "pbe", {"faults": faults})

    # The outage sits at 1250-1750 ms; the decoder went fully dark.
    stats = impaired.fault_stats
    assert stats is not None
    assert all(cell["outage_subframes"] >= 500
               for cell in stats["decoders"].values())

    # Fallback engaged during the outage (visible in telemetry) and
    # the flow spent most of its life on explicit feedback regardless.
    assert impaired.sender_states["fallback"] > 0.1
    assert impaired.sender_states["wireless"] > 1.0

    # Recovery: after reports resume (plus a settling RTT or two), the
    # impaired flow paces back to the unimpaired operating point.
    window = dict(start_us=2_250_000, end_us=int(duration_s * 1e6))
    clean_tput = float(np.mean(windowed_throughput_bps(
        clean.stats, **window)))
    impaired_tput = float(np.mean(windowed_throughput_bps(
        impaired.stats, **window)))
    assert impaired_tput > 0.9 * clean_tput


def test_impaired_run_is_deterministic():
    scenario = resilience_scenario(duration_s=0.5, base_seed=401)
    faults = fault_dict(0.2, 100, 0.5, fault_seed=3)
    first = run_flow(scenario, "pbe", {"faults": faults})
    second = run_flow(scenario, "pbe", {"faults": faults})
    assert first.summary.average_throughput_bps \
        == second.summary.average_throughput_bps
    assert first.fault_stats == second.fault_stats
    assert first.sender_states == second.sender_states
