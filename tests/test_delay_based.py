"""Unit tests for Copa, Verus and Sprout."""

import pytest

from repro.baselines.base import AckContext
from repro.baselines.copa import Copa
from repro.baselines.sprout import Sprout
from repro.baselines.verus import Verus
from repro.net.packet import Packet


def _ack(now_us, rtt_us=40_000, bits=12_000):
    return AckContext(ack=Packet(1, 0, is_ack=True), now_us=now_us,
                      rtt_us=rtt_us, delivery_rate_bps=10e6,
                      newly_acked_bits=bits, inflight_bits=120_000,
                      app_limited=False)


class TestCopa:
    def test_grows_without_standing_queue(self):
        cc = Copa()
        start = cc.cwnd
        for i in range(200):
            cc.on_ack(_ack(i * 1_000, rtt_us=40_000))  # constant RTT
        assert cc.cwnd > start

    def test_backs_off_with_large_standing_queue(self):
        cc = Copa()
        cc.cwnd = 100.0
        # RTTmin 40 ms established, then standing delay of 40 ms extra.
        for i in range(50):
            cc.on_ack(_ack(i * 1_000, rtt_us=40_000))
        grown = cc.cwnd
        for i in range(50, 400):
            cc.on_ack(_ack(i * 1_000, rtt_us=80_000))
        assert cc.cwnd < grown

    def test_equilibrium_tracks_target(self):
        # With dq = 10 ms and delta = 0.5, target is 200 packets/s.
        cc = Copa(delta=0.5)
        for i in range(2_000):
            rtt = 40_000 if i < 50 else 50_000
            cc.on_ack(_ack(i * 2_000, rtt_us=rtt))
        # current rate = cwnd / RTTstanding should hover near target.
        rate_pps = cc.cwnd * 1e6 / 50_000
        assert 100 < rate_pps < 400

    def test_loss_halves(self):
        cc = Copa()
        cc.cwnd = 50.0
        cc.on_loss(0, 12_000, 0)
        assert cc.cwnd == 25.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Copa(delta=0.0)


class TestVerus:
    def test_slow_start_exits_on_delay_growth(self):
        cc = Verus()
        for i in range(20):
            cc.on_ack(_ack(i * 1_000, rtt_us=20_000))
        assert cc._in_slow_start
        # Delay triples: slow start must end.
        for i in range(20, 200):
            cc.on_ack(_ack(i * 1_000, rtt_us=65_000))
        assert not cc._in_slow_start

    def test_learns_delay_profile(self):
        cc = Verus()
        for i in range(300):
            cc.on_ack(_ack(i * 1_000, rtt_us=30_000 + 100 * (i % 50)))
        assert len(cc._profile) >= 1

    def test_loss_halves_window(self):
        cc = Verus()
        cc.cwnd = 40.0
        cc._in_slow_start = False
        cc.on_loss(10**6, 12_000, 0)
        assert cc.cwnd == 20.0

    def test_backoff_when_delay_ratio_exceeded(self):
        cc = Verus()
        cc._in_slow_start = False
        cc._d_min_us = 20_000
        cc.cwnd = 100.0
        # Populate the profile's low-delay region first, then push the
        # observed delay far above the ratio threshold.
        for i in range(50):
            cc.on_ack(_ack(i * 6_000, rtt_us=25_000))
        for i in range(50, 300):
            cc.on_ack(_ack(i * 6_000, rtt_us=90_000))  # ratio 4.5 > R
        # The target delay keeps being reduced; the window settles near
        # the profile's learned value for that delay instead of growing.
        assert cc.cwnd <= 130.0


class TestSprout:
    def test_window_tracks_forecast(self):
        cc = Sprout()
        for i in range(500):
            cc.on_ack(_ack(i * 1_000))  # 12 Mbit/s steady
        # 12 Mbit/s over a 100 ms horizon = 100 packets.
        assert cc.cwnd == pytest.approx(100, rel=0.3)

    def test_variance_makes_forecast_cautious(self):
        # Same mean rate, but the jittery link alternates between fast
        # and slow *ticks* — the 5th-percentile forecast must shrink.
        steady, jittery = Sprout(), Sprout()
        for i in range(500):
            steady.on_ack(_ack(i * 1_000, bits=12_000))
            jittery.on_ack(_ack(i * 1_000,
                                bits=22_000 if (i // 20) % 2 else 2_000))
        assert jittery.cwnd < steady.cwnd * 0.8

    def test_timeout_halves_estimate(self):
        cc = Sprout()
        for i in range(200):
            cc.on_ack(_ack(i * 1_000))
        before = cc._mean_bps
        cc.on_timeout(10**6)
        assert cc._mean_bps == before / 2
        assert cc.cwnd == 2.0
