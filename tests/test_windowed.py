"""Tests for the time-windowed min/max filters."""

from hypothesis import given, strategies as st

from repro.baselines.windowed import WindowedMax, WindowedMin


def test_empty_filter_returns_none():
    assert WindowedMax(1_000).get() is None
    assert WindowedMin(1_000).get() is None


def test_max_tracks_maximum():
    f = WindowedMax(10_000)
    for t, v in [(0, 5.0), (1_000, 9.0), (2_000, 3.0)]:
        f.update(t, v)
    assert f.get() == 9.0


def test_min_tracks_minimum():
    f = WindowedMin(10_000)
    for t, v in [(0, 5.0), (1_000, 2.0), (2_000, 7.0)]:
        f.update(t, v)
    assert f.get() == 2.0


def test_samples_expire():
    f = WindowedMax(5_000)
    f.update(0, 100.0)
    f.update(1_000, 10.0)
    f.update(6_500, 20.0)  # the 100 at t=0 has fallen out
    assert f.get() == 20.0


def test_expire_without_update():
    f = WindowedMin(5_000)
    f.update(0, 1.0)
    f.update(1_000, 3.0)
    f.expire(10_000)
    assert f.get() is None


def test_reset_clears():
    f = WindowedMax(5_000)
    f.update(0, 1.0)
    f.reset()
    assert f.get() is None


def test_window_resize_applies_on_next_update():
    f = WindowedMax(100_000)
    f.update(0, 50.0)
    f.window_us = 1_000
    f.update(5_000, 10.0)  # 50 is now outside the shrunken window
    assert f.get() == 10.0


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=100_000),
                          st.floats(min_value=0, max_value=1e9)),
                min_size=1, max_size=50))
def test_matches_naive_computation(samples):
    samples.sort(key=lambda s: s[0])
    window = 10_000
    fmax, fmin = WindowedMax(window), WindowedMin(window)
    for t, v in samples:
        fmax.update(t, v)
        fmin.update(t, v)
    now = samples[-1][0]
    in_window = [v for t, v in samples if t >= now - window]
    assert fmax.get() == max(in_window)
    assert fmin.get() == min(in_window)
