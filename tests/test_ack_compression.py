"""The ACK-compression mechanism claim (§2, DESIGN.md substitution).

The uplink scheduling-grant cycle batches ACKs, which inflates
sender-side RTT samples with up to one grant period of jitter.  These
tests pin down the mechanism: delay-based schemes (Copa) collapse
under it, while PBE-CC — whose capacity signal is measured at the
*receiver* — is essentially unaffected.
"""

import pytest

from repro.harness import Scenario, run_flow
from repro.phy.carrier import CarrierConfig


def _run(scheme, batch_us):
    scenario = Scenario(
        name=f"ackc-{scheme}-{batch_us}",
        carriers=[CarrierConfig(0, 10.0)], aggregated_cells=1,
        mean_sinr_db=17.0, fading_std_db=0.5,
        uplink_batch_us=batch_us, duration_s=4.0, seed=25)
    return run_flow(scenario, scheme)


def test_copa_collapses_under_ack_batching():
    # ~5 ms LTE grant cycle, chosen incommensurate with the 1 ms
    # subframe clock: MAC deliveries (and so ACK arrivals at the
    # uplink) land on subframe boundaries, and a grant period of
    # exactly 5 000 µs phase-locks to them — one ACK per cycle rides
    # its grant boundary with zero hold, handing Copa a clean RTT
    # sample every cycle that a real (unsynchronized) grant clock
    # would not provide.
    smooth = _run("copa", batch_us=1)        # effectively no batching
    batched = _run("copa", batch_us=4_999)
    assert (batched.summary.average_throughput_bps
            < 0.8 * smooth.summary.average_throughput_bps)


def test_pbe_immune_to_ack_batching():
    smooth = _run("pbe", batch_us=1)
    batched = _run("pbe", batch_us=5_000)
    assert batched.summary.average_throughput_bps == pytest.approx(
        smooth.summary.average_throughput_bps, rel=0.1)


def test_cubic_immune_to_ack_batching():
    # Loss-based control does not care about RTT jitter.
    smooth = _run("cubic", batch_us=1)
    batched = _run("cubic", batch_us=5_000)
    assert batched.summary.average_throughput_bps == pytest.approx(
        smooth.summary.average_throughput_bps, rel=0.15)
