"""Tests for wired links, delay pipes and droptail queues."""

import pytest

from repro.net.link import DelayPipe, Link, PacketSink
from repro.net.packet import Packet
from repro.net.sim import Simulator


def _packet(seq=0, bits=12_000):
    return Packet(flow_id=1, seq=seq, size_bits=bits)


def test_delay_pipe_delivers_after_exact_delay():
    sim = Simulator()
    sink = PacketSink(sim)
    pipe = DelayPipe(sim, sink, delay_us=5_000)
    pipe.receive(_packet())
    sim.run()
    assert len(sink.packets) == 1
    assert sink.packets[0].recv_time_us == 5_000


def test_delay_pipe_rejects_negative_delay():
    with pytest.raises(ValueError):
        DelayPipe(Simulator(), PacketSink(), delay_us=-1)


def test_link_serialization_plus_propagation():
    sim = Simulator()
    sink = PacketSink(sim)
    # 12000 bits at 12 Mbit/s = 1 ms serialization, plus 2 ms propagation.
    link = Link(sim, sink, rate_bps=12e6, delay_us=2_000)
    link.receive(_packet())
    sim.run()
    assert sink.packets[0].recv_time_us == 3_000


def test_link_queue_serializes_back_to_back():
    sim = Simulator()
    sink = PacketSink(sim)
    link = Link(sim, sink, rate_bps=12e6, delay_us=0)
    for seq in range(3):
        link.receive(_packet(seq))
    sim.run()
    arrivals = [p.recv_time_us for p in sink.packets]
    assert arrivals == [1_000, 2_000, 3_000]


def test_link_droptail_drops_beyond_queue_limit():
    sim = Simulator()
    sink = PacketSink(sim)
    link = Link(sim, sink, rate_bps=12e6, delay_us=0, queue_packets=2)
    # One packet starts transmitting immediately; 2 queue; rest drop.
    for seq in range(6):
        link.receive(_packet(seq))
    sim.run()
    assert len(sink.packets) == 3
    assert link.dropped == 3
    assert link.forwarded == 3


def test_link_preserves_fifo_order():
    sim = Simulator()
    sink = PacketSink(sim)
    link = Link(sim, sink, rate_bps=100e6, delay_us=100)
    for seq in range(10):
        link.receive(_packet(seq))
    sim.run()
    assert [p.seq for p in sink.packets] == list(range(10))


def test_link_queue_depth_and_estimate():
    sim = Simulator()
    link = Link(sim, PacketSink(sim), rate_bps=12e6, delay_us=0)
    for seq in range(4):
        link.receive(_packet(seq))
    # One being transmitted, three queued.
    assert link.queue_depth == 3
    est = link.queue_delay_estimate_us(12_000)
    # 3 queued + the new one + the untransmitted remainder of the
    # in-flight packet, 1 ms each.
    assert est == 5_000


def test_link_estimate_counts_inflight_remainder():
    sim = Simulator()
    link = Link(sim, PacketSink(sim), rate_bps=12e6, delay_us=0)
    link.receive(_packet(0))  # serializes over [0, 1000) µs
    assert link.queue_delay_estimate_us(12_000) == 2_000
    # Halfway through serialization only half the packet remains.
    sim.run(until_us=500)
    assert link.queue_delay_estimate_us(12_000) == 1_000 + 500


def test_link_rejects_bad_config():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, PacketSink(), rate_bps=0, delay_us=0)
    with pytest.raises(ValueError):
        Link(sim, PacketSink(), rate_bps=1e6, delay_us=0, queue_packets=0)


def test_link_resumes_after_idle():
    sim = Simulator()
    sink = PacketSink(sim)
    link = Link(sim, sink, rate_bps=12e6, delay_us=0)
    link.receive(_packet(0))
    sim.run()
    sim.schedule_at(10_000, link.receive, _packet(1))
    sim.run()
    assert [p.recv_time_us for p in sink.packets] == [1_000, 11_000]


def test_hop_counter_increments():
    sim = Simulator()
    sink = PacketSink(sim)
    pipe2 = DelayPipe(sim, sink, 10)
    pipe1 = DelayPipe(sim, pipe2, 10)
    p = _packet()
    pipe1.receive(p)
    sim.run()
    assert p.hops == 2
