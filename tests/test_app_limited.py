"""Application-limited flows (the paper's Figure 5 'User 3' case)."""

import pytest

from repro.harness import Experiment, FlowSpec, Scenario
from repro.phy.carrier import CarrierConfig


def _scenario(**kw):
    defaults = dict(name="app", carriers=[CarrierConfig(0, 10.0)],
                    aggregated_cells=1, mean_sinr_db=17.0,
                    fading_std_db=0.0, duration_s=3.0, seed=15)
    defaults.update(kw)
    return Scenario(**defaults)


def test_app_rate_caps_throughput():
    exp = Experiment(_scenario())
    exp.add_flow(FlowSpec(scheme="pbe", app_rate_bps=8e6))
    result = exp.run()[0]
    assert result.summary.average_throughput_mbps == pytest.approx(
        8.0, rel=0.1)


def test_app_limited_flow_keeps_low_delay():
    exp = Experiment(_scenario())
    exp.add_flow(FlowSpec(scheme="pbe", app_rate_bps=8e6))
    result = exp.run()[0]
    floor = min(result.stats.delay_us) / 1_000
    assert result.summary.p95_delay_ms < floor + 12.0


def test_app_limited_packets_marked():
    from repro.baselines.base import Sender
    exp = Experiment(_scenario())
    handle = exp.add_flow(FlowSpec(scheme="bbr", app_rate_bps=5e6))
    marked = []
    original = handle.sender._transmit

    def spy(app_limited=False):
        marked.append(app_limited)
        original(app_limited=app_limited)

    handle.sender._transmit = spy
    exp.run()
    # Once BBR's allowed rate exceeds 5 Mbit/s, packets are marked.
    assert any(marked)


def test_bbr_recovers_from_app_limit_but_only_cycle_by_cycle():
    """An app-limited phase must not permanently pin BBR's bandwidth
    estimate — but recovery is inherently slow (+25% per ~8-RTprop
    probe cycle), which is exactly the lag PBE-CC's explicit
    measurements avoid."""
    import numpy as np
    exp = Experiment(_scenario(duration_s=4.0))
    handle = exp.add_flow(FlowSpec(scheme="bbr"))
    # App-limited to 5 Mbit/s for 2 s, then unthrottled.
    exp.sim.schedule(0, lambda: setattr(handle.sender, "app_rate_bps",
                                        5e6))
    exp.sim.schedule(2_000_000,
                     lambda: setattr(handle.sender, "app_rate_bps",
                                     None))
    result = exp.run()[0]
    arrivals = np.asarray(result.stats.arrival_us)
    sizes = np.asarray(result.stats.size_bits)

    def rate(lo_s, hi_s):
        mask = (arrivals > lo_s * 1e6) & (arrivals <= hi_s * 1e6)
        return sizes[mask].sum() / (hi_s - lo_s) / 1e6

    # Growing, well above the old cap, but nowhere near the ~40 Mbit/s
    # capacity yet: probing compounds cycle by cycle.
    assert rate(2.5, 3.0) > 6.0
    assert rate(3.5, 4.0) > rate(2.5, 3.0)
    assert rate(3.5, 4.0) < 35.0


def test_pbe_recovers_from_app_limit_within_an_rtt():
    """Contrast: PBE-CC's feedback already says the capacity is there,
    so the sender jumps straight back up."""
    import numpy as np
    exp = Experiment(_scenario(duration_s=4.0))
    handle = exp.add_flow(FlowSpec(scheme="pbe", app_rate_bps=5e6))
    exp.sim.schedule(2_000_000,
                     lambda: setattr(handle.sender, "app_rate_bps",
                                     None))
    result = exp.run()[0]
    arrivals = np.asarray(result.stats.arrival_us)
    sizes = np.asarray(result.stats.size_bits)
    soon = sizes[(arrivals > 2.2e6) & (arrivals <= 2.7e6)].sum() / 0.5
    assert soon / 1e6 > 30.0  # near capacity within ~0.2 s


def test_other_pbe_user_grabs_idle_capacity():
    """Figure 5: a rate-limited user leaves idle PRBs; the full-buffer
    PBE user detects and occupies them."""
    exp = Experiment(_scenario(duration_s=3.0))
    exp.add_flow(FlowSpec(scheme="pbe", rnti=100, app_rate_bps=6e6))
    exp.add_flow(FlowSpec(scheme="pbe", rnti=101))
    results = exp.run()
    tputs = {r.spec.rnti: r.summary.average_throughput_mbps
             for r in results}
    assert tputs[100] == pytest.approx(6.0, rel=0.15)
    # The unconstrained user takes (nearly) all the rest of the ~40
    # Mbit/s cell rather than stopping at a half split.
    assert tputs[101] > 25.0


def test_sender_validates_app_rate():
    from repro.baselines.base import Sender
    from repro.baselines.cubic import Cubic
    from repro.net.sim import Simulator
    with pytest.raises(ValueError):
        Sender(Simulator(), 1, Cubic(), egress=None, app_rate_bps=0)
