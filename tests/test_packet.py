"""Tests for packet and ACK construction."""

from repro.net.packet import ACK_BITS, Packet
from repro.net.units import MSS_BITS


def test_data_packet_defaults():
    p = Packet(flow_id=1, seq=7)
    assert p.size_bits == MSS_BITS
    assert not p.is_ack
    assert p.acked_seq == -1
    assert p.recv_time_us == -1
    assert p.meta == {}


def test_make_ack_echoes_identity_and_timestamps():
    p = Packet(flow_id=3, seq=42, sent_time_us=123_456)
    p.delivered_at_send = 999
    p.delivered_time_at_send = 111
    p.app_limited = True
    ack = p.make_ack(now_us=200_000, feedback={"x": 1})
    assert ack.is_ack
    assert ack.flow_id == 3
    assert ack.acked_seq == 42
    assert ack.sent_time_us == 123_456  # echoed for RTT computation
    assert ack.recv_time_us == 200_000
    assert ack.feedback == {"x": 1}
    assert ack.delivered_at_send == 999
    assert ack.delivered_time_at_send == 111
    assert ack.app_limited
    assert ack.size_bits == ACK_BITS


def test_ack_is_small():
    assert ACK_BITS < MSS_BITS / 10


def test_meta_is_per_packet():
    a = Packet(1, 0)
    b = Packet(1, 1)
    a.meta["k"] = 1
    assert "k" not in b.meta


def test_repr_mentions_kind():
    assert "DATA" in repr(Packet(1, 0))
    assert "ACK" in repr(Packet(1, 0).make_ack(0))
