"""Unit tests for the PBE-CC sender state machine."""

import pytest

from repro.baselines.base import AckContext
from repro.core.feedback import PbeFeedback
from repro.core.sender import (
    DRAIN,
    INTERNET,
    RAMP_RTTS,
    STARTUP,
    WIRELESS,
    WIRELESS_PACING_GAIN,
    PbeSender,
)
from repro.net.packet import Packet
from repro.net.units import US_PER_S


def _ack(now_us, feedback, rtt_us=40_000, rate_bps=50e6):
    ack = Packet(1, 0, is_ack=True)
    ack.feedback = feedback
    return AckContext(ack=ack, now_us=now_us, rtt_us=rtt_us,
                      delivery_rate_bps=rate_bps, newly_acked_bits=12_000,
                      inflight_bits=120_000, app_limited=False)


def _fb(target=50e6, fair=50e6, internet=False, activated=False):
    return PbeFeedback.from_rates(target, fair, internet, activated)


def _warm(cc, target=50e6, fair=50e6, count=200, start=0, gap=1_000,
          **fbkw):
    t = start
    for _ in range(count):
        cc.on_ack(_ack(t, _fb(target, fair, **fbkw)))
        t += gap
    return t


def test_starts_in_startup_at_initial_rate():
    cc = PbeSender()
    assert cc.state == STARTUP
    assert cc.pacing_rate_bps(0) == cc.initial_rate_bps


def test_linear_ramp_to_fair_share_over_three_rtts():
    cc = PbeSender()
    cc.on_ack(_ack(0, _fb(fair=60e6)))
    cc.pacing_rate_bps(0)  # arms the ramp
    ramp_us = RAMP_RTTS * 40_000
    half = cc.pacing_rate_bps(ramp_us // 2)
    assert half == pytest.approx(30e6, rel=0.15)
    full = cc.pacing_rate_bps(ramp_us)
    assert full == pytest.approx(60e6, rel=0.05)


def test_enters_wireless_after_ramp():
    cc = PbeSender()
    _warm(cc, count=200)
    assert cc.state == WIRELESS


def test_wireless_paces_above_target_with_bdp_cwnd():
    cc = PbeSender()
    t = _warm(cc, target=50e6)
    assert cc.pacing_rate_bps(t) == pytest.approx(
        WIRELESS_PACING_GAIN * 50e6)
    cwnd = cc.cwnd_bits(t)
    bdp = 50e6 * cc.rtprop_us / US_PER_S
    assert bdp < cwnd < bdp + 50e6 * 0.020 + 5 * cc.mss_bits


def test_tracks_changing_target_rate():
    cc = PbeSender()
    t = _warm(cc, target=50e6)
    cc.on_ack(_ack(t, _fb(target=20e6)))
    assert cc.target_rate_bps == pytest.approx(20e6, rel=0.01)
    assert cc.pacing_rate_bps(t) == pytest.approx(
        WIRELESS_PACING_GAIN * 20e6, rel=0.01)


def test_carrier_activation_restarts_ramp():
    cc = PbeSender()
    t = _warm(cc, target=50e6, fair=50e6)
    cc.on_ack(_ack(t, _fb(target=50e6, fair=90e6, activated=True)))
    assert cc.state == STARTUP
    # Ramp starts from the old operating rate, not from zero.
    assert cc.pacing_rate_bps(t) == pytest.approx(50e6, rel=0.1)
    t2 = _warm(cc, target=90e6, fair=90e6, start=t + 1_000)
    assert cc.state == WIRELESS
    assert cc.pacing_rate_bps(t2) == pytest.approx(
        WIRELESS_PACING_GAIN * 90e6, rel=0.05)


def test_internet_bottleneck_drains_then_probes():
    cc = PbeSender()
    t = _warm(cc)
    cc.on_ack(_ack(t, _fb(internet=True)))
    assert cc.state == DRAIN
    # Drain pacing is half the bottleneck estimate.
    assert cc.pacing_rate_bps(t) == pytest.approx(
        0.5 * cc.bbr.btlbw_bps, rel=0.05)
    # After one RTprop of internet-flagged ACKs, switch to BBR mode.
    t = _warm(cc, count=80, start=t + 1_000, internet=True)
    assert cc.state == INTERNET
    assert cc.bbr.state == "probe_bw"


def test_returns_to_wireless_when_flag_clears():
    cc = PbeSender()
    t = _warm(cc)
    t = _warm(cc, count=100, start=t, internet=True)
    assert cc.state == INTERNET
    cc.on_ack(_ack(t, _fb(internet=False)))
    assert cc.state == WIRELESS


def test_probe_cap_follows_fair_share():
    cc = PbeSender()
    t = _warm(cc, fair=30e6)
    assert cc._fair_share_cap() == pytest.approx(30e6, rel=0.01)


def test_on_send_stamps_srtt_and_phase():
    cc = PbeSender()
    _warm(cc)
    packet = Packet(1, 0)
    cc.on_send(packet)
    assert packet.meta["srtt_us"] > 0
    assert packet.meta["phase"] == WIRELESS


def test_timeout_restarts():
    cc = PbeSender()
    _warm(cc)
    cc.on_timeout(10**6)
    assert cc.state == STARTUP


def test_validation():
    with pytest.raises(ValueError):
        PbeSender(initial_rate_bps=0)
