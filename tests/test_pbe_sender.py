"""Unit tests for the PBE-CC sender state machine."""

import pytest

from repro.baselines.base import AckContext
from repro.core.feedback import PbeFeedback
from repro.core.sender import (
    DRAIN,
    FALLBACK,
    INTERNET,
    RAMP_RTTS,
    STARTUP,
    WIRELESS,
    WIRELESS_PACING_GAIN,
    PbeSender,
)
from repro.net.packet import Packet
from repro.net.units import US_PER_S


def _ack(now_us, feedback, rtt_us=40_000, rate_bps=50e6):
    ack = Packet(1, 0, is_ack=True)
    ack.feedback = feedback
    # srtt_us mirrors what Sender's EWMA filter yields for a constant
    # rtt stream (PbeSender adopts the transport srtt from the ctx).
    return AckContext(ack=ack, now_us=now_us, rtt_us=rtt_us,
                      delivery_rate_bps=rate_bps, newly_acked_bits=12_000,
                      inflight_bits=120_000, app_limited=False,
                      srtt_us=rtt_us)


def _fb(target=50e6, fair=50e6, internet=False, activated=False):
    return PbeFeedback.from_rates(target, fair, internet, activated)


def _warm(cc, target=50e6, fair=50e6, count=200, start=0, gap=1_000,
          **fbkw):
    t = start
    for _ in range(count):
        cc.on_ack(_ack(t, _fb(target, fair, **fbkw)))
        t += gap
    return t


def test_starts_in_startup_at_initial_rate():
    cc = PbeSender()
    assert cc.state == STARTUP
    assert cc.pacing_rate_bps(0) == cc.initial_rate_bps


def test_linear_ramp_to_fair_share_over_three_rtts():
    cc = PbeSender()
    cc.on_ack(_ack(0, _fb(fair=60e6)))
    cc.pacing_rate_bps(0)  # arms the ramp
    ramp_us = RAMP_RTTS * 40_000
    half = cc.pacing_rate_bps(ramp_us // 2)
    assert half == pytest.approx(30e6, rel=0.15)
    full = cc.pacing_rate_bps(ramp_us)
    assert full == pytest.approx(60e6, rel=0.05)


def test_enters_wireless_after_ramp():
    cc = PbeSender()
    _warm(cc, count=200)
    assert cc.state == WIRELESS


def test_wireless_paces_above_target_with_bdp_cwnd():
    cc = PbeSender()
    t = _warm(cc, target=50e6)
    assert cc.pacing_rate_bps(t) == pytest.approx(
        WIRELESS_PACING_GAIN * 50e6)
    cwnd = cc.cwnd_bits(t)
    bdp = 50e6 * cc.rtprop_us / US_PER_S
    assert bdp < cwnd < bdp + 50e6 * 0.020 + 5 * cc.mss_bits


def test_tracks_changing_target_rate():
    cc = PbeSender()
    t = _warm(cc, target=50e6)
    cc.on_ack(_ack(t, _fb(target=20e6)))
    assert cc.target_rate_bps == pytest.approx(20e6, rel=0.01)
    assert cc.pacing_rate_bps(t) == pytest.approx(
        WIRELESS_PACING_GAIN * 20e6, rel=0.01)


def test_carrier_activation_restarts_ramp():
    cc = PbeSender()
    t = _warm(cc, target=50e6, fair=50e6)
    cc.on_ack(_ack(t, _fb(target=50e6, fair=90e6, activated=True)))
    assert cc.state == STARTUP
    # Ramp starts from the old operating rate, not from zero.
    assert cc.pacing_rate_bps(t) == pytest.approx(50e6, rel=0.1)
    t2 = _warm(cc, target=90e6, fair=90e6, start=t + 1_000)
    assert cc.state == WIRELESS
    assert cc.pacing_rate_bps(t2) == pytest.approx(
        WIRELESS_PACING_GAIN * 90e6, rel=0.05)


def test_internet_bottleneck_drains_then_probes():
    cc = PbeSender()
    t = _warm(cc)
    cc.on_ack(_ack(t, _fb(internet=True)))
    assert cc.state == DRAIN
    # Drain pacing is half the bottleneck estimate.
    assert cc.pacing_rate_bps(t) == pytest.approx(
        0.5 * cc.bbr.btlbw_bps, rel=0.05)
    # After one RTprop of internet-flagged ACKs, switch to BBR mode.
    t = _warm(cc, count=80, start=t + 1_000, internet=True)
    assert cc.state == INTERNET
    assert cc.bbr.state == "probe_bw"


def test_returns_to_wireless_when_flag_clears():
    cc = PbeSender()
    t = _warm(cc)
    t = _warm(cc, count=100, start=t, internet=True)
    assert cc.state == INTERNET
    cc.on_ack(_ack(t, _fb(internet=False)))
    assert cc.state == WIRELESS


def test_probe_cap_follows_fair_share():
    cc = PbeSender()
    t = _warm(cc, fair=30e6)
    assert cc._fair_share_cap() == pytest.approx(30e6, rel=0.01)


def test_on_send_stamps_srtt_and_phase():
    cc = PbeSender()
    _warm(cc)
    packet = Packet(1, 0)
    cc.on_send(packet)
    assert packet.meta["srtt_us"] > 0
    assert packet.meta["phase"] == WIRELESS


def test_timeout_restarts():
    cc = PbeSender()
    _warm(cc)
    cc.on_timeout(10**6)
    assert cc.state == STARTUP


def test_validation():
    with pytest.raises(ValueError):
        PbeSender(initial_rate_bps=0)


# ----------------------------------------------------------------------
# Feedback watchdog / graceful degradation
# ----------------------------------------------------------------------
def test_feedback_timeout_validation():
    with pytest.raises(ValueError):
        PbeSender(feedback_timeout_us=0)
    with pytest.raises(ValueError):
        PbeSender(feedback_timeout_us=-1)


def test_watchdog_falls_back_when_feedback_stops():
    cc = PbeSender(feedback_timeout_us=50_000)
    t = _warm(cc)
    assert cc.state == WIRELESS
    # ACKs keep arriving but carry no capacity report (lost/corrupted).
    for _ in range(100):
        cc.on_ack(_ack(t, None))
        t += 1_000
    assert cc.state == FALLBACK
    assert cc.fallback_entries == 1
    # Rate control is now the embedded BBR's.
    assert cc.pacing_rate_bps(t) == cc.bbr.pacing_rate_bps(t)
    assert cc.cwnd_bits(t) == cc.bbr.cwnd_bits(t)


def test_watchdog_trips_from_rate_query_without_acks():
    cc = PbeSender(feedback_timeout_us=50_000)
    t = _warm(cc)
    # Total ACK silence: only the pacing loop keeps running.
    cc.pacing_rate_bps(t + 200_000)
    assert cc.state == FALLBACK


def test_stale_feedback_does_not_steer_and_trips_watchdog():
    cc = PbeSender(feedback_timeout_us=50_000)
    t = _warm(cc, target=50e6)
    stale = PbeFeedback.from_rates(5e6, 5e6, False, stale=True)
    for _ in range(100):
        cc.on_ack(_ack(t, stale))
        t += 1_000
    # The stale report's rates never reached the controller.
    assert cc.target_rate_bps == pytest.approx(50e6, rel=0.01)
    assert cc.stale_feedback_acks == 100
    assert cc.state == FALLBACK


def test_fresh_feedback_resyncs_through_startup_ramp():
    cc = PbeSender(feedback_timeout_us=50_000)
    t = _warm(cc, target=50e6, fair=50e6)
    for _ in range(100):
        cc.on_ack(_ack(t, None))
        t += 1_000
    assert cc.state == FALLBACK
    resume = t
    cc.on_ack(_ack(t, _fb(target=50e6, fair=50e6)))
    # Re-entry reuses the §4.1 ramp from the fallback operating point.
    assert cc.state == STARTUP
    rate_now = cc.pacing_rate_bps(t)
    assert rate_now >= cc.initial_rate_bps
    t = _warm(cc, target=50e6, fair=50e6, start=t + 1_000)
    assert cc.state == WIRELESS
    assert cc.fallback_entries == 1
    durations = cc.state_durations_us(t)
    assert durations[FALLBACK] == pytest.approx(resume - 249_000,
                                                abs=2_000)


def test_never_reporting_client_still_falls_back():
    cc = PbeSender(feedback_timeout_us=50_000)
    t = 0
    for _ in range(100):
        cc.on_ack(_ack(t, None))
        t += 1_000
    assert cc.state == FALLBACK
    assert cc.fallback_entries == 1


def test_watchdog_auto_timeout_has_floor():
    cc = PbeSender()
    t = _warm(cc)
    # Silence shorter than the 100 ms floor never trips the watchdog.
    cc.pacing_rate_bps(t + 90_000)
    assert cc.state == WIRELESS


def test_state_durations_cover_whole_timeline():
    cc = PbeSender(feedback_timeout_us=50_000)
    t = _warm(cc)
    for _ in range(100):
        cc.on_ack(_ack(t, None))
        t += 1_000
    durations = cc.state_durations_us(t)
    assert sum(durations.values()) == t
    assert durations[FALLBACK] > 0
