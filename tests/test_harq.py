"""Tests for HARQ constants and the reordering buffer (paper Figure 3)."""

from hypothesis import given, strategies as st

from repro.phy.harq import (
    MAX_RETRANSMISSIONS,
    RETX_DELAY_SUBFRAMES,
    HarqProcess,
    ReorderingBuffer,
)


def test_paper_constants():
    # §3: retransmission after eight subframes, at most three times.
    assert RETX_DELAY_SUBFRAMES == 8
    assert MAX_RETRANSMISSIONS == 3


def test_in_order_passthrough():
    buf = ReorderingBuffer()
    assert buf.insert(0, "a") == ["a"]
    assert buf.insert(1, "b") == ["b"]
    assert buf.expected_seq == 2


def test_out_of_order_blocks_until_gap_fills():
    buf = ReorderingBuffer()
    assert buf.insert(1, "b") == []
    assert buf.insert(2, "c") == []
    assert buf.held == 2
    assert buf.insert(0, "a") == ["a", "b", "c"]
    assert buf.held == 0


def test_abandon_releases_blocked_blocks():
    buf = ReorderingBuffer()
    buf.insert(1, "b")
    buf.insert(2, "c")
    assert buf.abandon(0) == ["b", "c"]
    assert buf.expected_seq == 3


def test_abandon_future_seq_waits_its_turn():
    buf = ReorderingBuffer()
    assert buf.abandon(2) == []
    assert buf.insert(0, "a") == ["a"]
    assert buf.insert(1, "b") == ["b"]   # seq 2 then skipped silently
    assert buf.insert(3, "d") == ["d"]
    assert buf.expected_seq == 4


def test_duplicates_ignored():
    buf = ReorderingBuffer()
    buf.insert(0, "a")
    assert buf.insert(0, "a-again") == []
    buf.insert(2, "c")
    assert buf.insert(2, "c-again") == []
    assert buf.insert(1, "b") == ["b", "c"]


def test_stale_abandon_ignored():
    buf = ReorderingBuffer()
    buf.insert(0, "a")
    assert buf.abandon(0) == []
    assert buf.expected_seq == 1


def test_max_held_tracks_peak():
    buf = ReorderingBuffer()
    for seq in range(1, 6):
        buf.insert(seq, seq)
    assert buf.max_held == 5
    buf.insert(0, 0)
    assert buf.max_held == 5


@given(st.permutations(list(range(12))))
def test_any_arrival_order_delivers_sorted(order):
    buf = ReorderingBuffer()
    out = []
    for seq in order:
        out.extend(buf.insert(seq, seq))
    assert out == sorted(order)


@given(st.permutations(list(range(10))),
       st.sets(st.integers(min_value=0, max_value=9), max_size=4))
def test_abandoned_blocks_are_skipped_not_delivered(order, abandoned):
    buf = ReorderingBuffer()
    out = []
    for seq in order:
        if seq in abandoned:
            out.extend(buf.abandon(seq))
        else:
            out.extend(buf.insert(seq, seq))
    assert out == sorted(set(range(10)) - abandoned)


def test_harq_process_attempt_budget():
    h = HarqProcess(seq=0, payload="tb", tb_bits=1000)
    assert h.attempt == 0
    attempts = []
    while h.can_retransmit():
        attempts.append(h.next_attempt())
    assert attempts == [1, 2, 3]
    assert h.next_attempt() is None
