"""Tests for the carrier-aggregation activation policy."""

import pytest

from repro.cell.ca_manager import CaPolicy, CarrierAggregationManager
from repro.phy.carrier import AggregationState


def _policy(**kw):
    defaults = dict(window=10, activation_fraction=0.7,
                    deactivation_fraction=0.5, deactivation_hold=20,
                    cooldown=5)
    defaults.update(kw)
    return CaPolicy(**defaults)


def _drive(manager, agg, subframes, used, total, backlogged, start=0):
    actions = []
    for i in range(subframes):
        action = manager.observe(start + i, 1, agg, used, total, backlogged)
        if action:
            actions.append((start + i, action))
    return actions


def test_policy_validation():
    with pytest.raises(ValueError):
        CaPolicy(window=0)
    with pytest.raises(ValueError):
        CaPolicy(activation_fraction=0.0)
    with pytest.raises(ValueError):
        CaPolicy(deactivation_fraction=1.5)


def test_activation_on_sustained_high_utilization():
    manager = CarrierAggregationManager(_policy())
    agg = AggregationState(configured=[0, 1])
    actions = _drive(manager, agg, 30, used=90, total=100, backlogged=True)
    assert actions and actions[0][1] == "activate"
    assert agg.active_cells == [0, 1]
    assert manager.activations_for(1) == 1


def test_no_activation_without_backlog():
    manager = CarrierAggregationManager(_policy())
    agg = AggregationState(configured=[0, 1])
    actions = _drive(manager, agg, 50, used=90, total=100, backlogged=False)
    assert actions == []


def test_no_activation_at_low_utilization():
    manager = CarrierAggregationManager(_policy())
    agg = AggregationState(configured=[0, 1])
    actions = _drive(manager, agg, 50, used=30, total=100, backlogged=True)
    assert actions == []


def test_no_activation_when_all_cells_active():
    manager = CarrierAggregationManager(_policy())
    agg = AggregationState(configured=[0], active_count=1)
    actions = _drive(manager, agg, 50, used=95, total=100, backlogged=True)
    assert actions == []


def test_deactivation_after_sustained_underuse():
    manager = CarrierAggregationManager(_policy())
    agg = AggregationState(configured=[0, 1], active_count=2)
    actions = _drive(manager, agg, 60, used=10, total=150, backlogged=False)
    assert actions and actions[0][1] == "deactivate"
    assert agg.active_cells == [0]


def test_deactivation_needs_consecutive_underuse():
    manager = CarrierAggregationManager(_policy(deactivation_hold=20))
    agg = AggregationState(configured=[0, 1], active_count=2)
    # Alternate 5 idle / 5 busy subframes: the windowed mean keeps
    # jumping back above the deactivation threshold, so the
    # under-utilization run never reaches the hold.
    for i in range(200):
        used = 10 if (i // 5) % 2 == 0 else 140
        manager.observe(i, 1, agg, used, 150, backlogged=False)
    assert agg.active_cells == [0, 1]


def test_cooldown_spaces_switches():
    manager = CarrierAggregationManager(_policy(cooldown=100))
    agg = AggregationState(configured=[0, 1, 2])
    actions = _drive(manager, agg, 250, used=95, total=100, backlogged=True)
    assert len(actions) == 2
    assert agg.active_cells == [0, 1, 2]
    # Consecutive switches are at least one cooldown apart.
    assert actions[1][0] - actions[0][0] >= 100


def test_events_log():
    manager = CarrierAggregationManager(_policy())
    agg = AggregationState(configured=[0, 1])
    _drive(manager, agg, 30, used=90, total=100, backlogged=True)
    assert manager.events
    subframe, rnti, action, cell = manager.events[0]
    assert (rnti, action, cell) == (1, "activate", 1)
