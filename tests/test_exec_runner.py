"""ParallelRunner: parallel/serial equivalence, memoization, telemetry.

Simulations here are deliberately tiny (one 10 MHz carrier, ~1 s
flows) — the subject under test is the execution subsystem, not the
simulator.
"""

import concurrent.futures
import json

import pytest

from repro.exec import (
    Job,
    JobEvent,
    JobExecutionError,
    ParallelRunner,
    ResultStore,
    canonical_json,
    execute_job,
    is_failure,
)
from repro.harness import Scenario
from repro.harness.experiments import run_stationary_sweep
from repro.phy.carrier import CarrierConfig

SWEEP_KW = dict(schemes=("pbe", "bbr"), n_busy=1, n_idle=1,
                duration_s=1.0)


def tiny_scenario(seed=7, **overrides):
    base = dict(name=f"runner-{seed}", carriers=[CarrierConfig(0, 10.0)],
                aggregated_cells=1, mean_sinr_db=14.0,
                duration_s=1.0, seed=seed)
    base.update(overrides)
    return Scenario(**base)


def pool_works() -> bool:
    """True when this platform can actually spawn pool workers."""
    try:
        with concurrent.futures.ProcessPoolExecutor(1) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


# ---------------------------------------------------------------------
# Cross-process determinism: the cache key (job inputs) must pin down
# the payload bytes no matter where the job ran.
def test_worker_process_payload_is_byte_identical_to_inline():
    if not pool_works():
        pytest.skip("no working process pool on this platform")
    jobs = [Job(tiny_scenario(seed=7), "pbe"),
            Job(tiny_scenario(seed=8), "bbr")]
    inline = [execute_job(job) for job in jobs]
    with concurrent.futures.ProcessPoolExecutor(2) as pool:
        remote = list(pool.map(execute_job, jobs))
    for a, b in zip(inline, remote):
        assert canonical_json(a) == canonical_json(b)


def test_parallel_sweep_equals_serial_sweep():
    serial = run_stationary_sweep(jobs=1, **SWEEP_KW)
    parallel = run_stationary_sweep(jobs=4, **SWEEP_KW)
    assert serial == parallel
    assert [e.scheme for e in serial.entries] == \
        [e.scheme for e in parallel.entries]


# ---------------------------------------------------------------------
# Memoization through the ResultStore.
def test_warm_cache_executes_zero_jobs(tmp_path):
    store = ResultStore(tmp_path)
    cold = ParallelRunner(store=store)
    first = run_stationary_sweep(runner=cold, **SWEEP_KW)
    assert cold.stats.executed == 4
    assert cold.stats.cache_hits == 0

    warm = ParallelRunner(store=store)
    second = run_stationary_sweep(runner=warm, **SWEEP_KW)
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == warm.stats.total == 4
    assert warm.stats.cache_hit_rate == 1.0
    assert first == second


def test_warm_cache_is_shared_by_parallel_runs(tmp_path):
    first = run_stationary_sweep(jobs=4, cache_dir=tmp_path, **SWEEP_KW)
    warm = ParallelRunner(jobs=4, store=ResultStore(tmp_path))
    second = run_stationary_sweep(runner=warm, **SWEEP_KW)
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == 4
    assert first == second


def test_fingerprint_change_forces_reexecution(tmp_path):
    store = ResultStore(tmp_path)
    run_stationary_sweep(runner=ParallelRunner(store=store), **SWEEP_KW)

    for changed in (dict(SWEEP_KW, base_seed=101),
                    dict(SWEEP_KW, duration_s=1.2),
                    dict(SWEEP_KW, schemes=("pbe", "cubic"))):
        runner = ParallelRunner(store=store)
        run_stationary_sweep(runner=runner, **changed)
        assert runner.stats.executed > 0, changed


def test_spec_override_changes_fingerprint_and_result(tmp_path):
    runner = ParallelRunner(store=ResultStore(tmp_path))
    base = Job(tiny_scenario(), "cbr")
    slow = Job(tiny_scenario(), "cbr",
               {"cc_kwargs": {"rate_bps": 1e6}})
    [p_base, p_slow] = runner.run([base, slow])
    assert runner.stats.executed == 2  # distinct fingerprints
    assert p_base["summary"]["average_throughput_bps"] > \
        p_slow["summary"]["average_throughput_bps"]


def test_corrupt_cache_entry_reexecuted(tmp_path):
    store = ResultStore(tmp_path)
    job = Job(tiny_scenario(), "bbr")
    first = ParallelRunner(store=store)
    [payload] = first.run([job])
    store.path_for(job.fingerprint()).write_text('{"broken')

    again = ParallelRunner(store=store)
    [recomputed] = again.run([job])
    assert again.stats.executed == 1
    assert again.stats.cache_hits == 0
    assert again.stats.quarantined == 1  # debris kept, not deleted
    assert recomputed == payload  # determinism heals the cache


# ---------------------------------------------------------------------
# Runner mechanics.
def test_duplicate_jobs_execute_once():
    runner = ParallelRunner()
    job = Job(tiny_scenario(), "bbr")
    results = runner.run([job, Job(tiny_scenario(), "bbr")])
    assert runner.stats.executed == 1
    assert runner.stats.deduplicated == 1
    assert results[0] is results[1]


def test_progress_events_and_stats(tmp_path):
    events = []
    runner = ParallelRunner(store=ResultStore(tmp_path),
                            progress=events.append)
    jobs = [Job(tiny_scenario(seed=7), "bbr"),
            Job(tiny_scenario(seed=8), "bbr")]
    runner.run(jobs)
    assert [e.kind for e in events] == ["executed", "executed"]
    assert events[-1].done == events[-1].total == 2
    assert all(isinstance(e, JobEvent) for e in events)
    assert len(runner.stats.job_wall_s) == 2
    assert runner.stats.wall_s > 0
    assert "2 jobs" in runner.stats.format()

    events.clear()
    cached = ParallelRunner(store=ResultStore(tmp_path),
                            progress=events.append)
    cached.run(jobs)
    assert [e.kind for e in events] == ["cached", "cached"]


def test_pool_unavailable_falls_back_inline(monkeypatch):
    events = []
    runner = ParallelRunner(jobs=4, progress=events.append)
    monkeypatch.setattr(runner, "_make_executor", lambda n: None)
    [payload] = runner.run([Job(tiny_scenario(), "bbr")])
    assert payload["summary"]["packets"] > 0
    assert runner.stats.executed == 1


def test_job_error_isolated_inline_by_default():
    runner = ParallelRunner()
    [failure] = runner.run([Job(tiny_scenario(), "warp-drive")])
    assert is_failure(failure)
    assert failure.kind == "job-error"
    assert failure.exc_type == "ValueError"
    assert "unknown scheme" in failure.message
    assert "Traceback" in failure.traceback
    assert runner.stats.failed == 1


def test_job_error_propagates_inline_when_strict():
    with pytest.raises(ValueError, match="unknown scheme"):
        ParallelRunner(strict=True).run(
            [Job(tiny_scenario(), "warp-drive")])


def test_timeout_guard_raises_after_retries_when_strict():
    if not pool_works():
        pytest.skip("no working process pool on this platform")
    runner = ParallelRunner(jobs=2, timeout_s=0.001, retries=0,
                            strict=True)
    with pytest.raises(JobExecutionError) as err:
        # two jobs: a single pending job would take the inline path,
        # which has no pool to time out on
        runner.run([Job(tiny_scenario(seed=7), "bbr"),
                    Job(tiny_scenario(seed=8), "bbr")])
    assert "/bbr" in str(err.value)


def test_timeout_isolated_as_failure_by_default():
    if not pool_works():
        pytest.skip("no working process pool on this platform")
    runner = ParallelRunner(jobs=2, timeout_s=0.001, retries=0)
    failures = runner.run([Job(tiny_scenario(seed=7), "bbr"),
                           Job(tiny_scenario(seed=8), "bbr")])
    assert all(is_failure(f) and f.kind == "timeout"
               for f in failures)
    assert runner.stats.failed == 2


def test_constructor_validation():
    with pytest.raises(ValueError):
        ParallelRunner(jobs=0)
    with pytest.raises(ValueError):
        ParallelRunner(retries=-1)
    with pytest.raises(ValueError):
        ParallelRunner(timeout_s=0)
    with pytest.raises(ValueError):
        ParallelRunner(failure_budget=1.5)


def test_payloads_are_json_normalized():
    [payload] = ParallelRunner().run([Job(tiny_scenario(), "pbe")])
    assert payload == json.loads(json.dumps(payload))
    assert all(isinstance(k, str)
               for k in payload["summary"]["delay_percentiles_ms"])
