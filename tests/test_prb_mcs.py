"""Tests for the PRB grid and MCS/CQI tables."""

import pytest
from hypothesis import given, strategies as st

from repro.phy import mcs, prb


def test_standard_bandwidths():
    assert prb.prbs_for_bandwidth(20.0) == 100
    assert prb.prbs_for_bandwidth(10.0) == 50
    assert prb.prbs_for_bandwidth(5.0) == 25
    assert prb.prbs_for_bandwidth(1.4) == 6


def test_nonstandard_bandwidth_rejected():
    with pytest.raises(ValueError, match="non-standard"):
        prb.prbs_for_bandwidth(7.0)


def test_prb_constants():
    assert prb.PRB_BANDWIDTH_HZ == 180_000
    assert prb.SUBFRAME_US == 2 * prb.SLOT_US == 1_000


def test_mcs_table_efficiency_monotonic():
    effs = [e.efficiency for e in mcs.MCS_TABLE]
    assert effs == sorted(effs)
    assert effs[0] == 0.0


def test_sinr_to_mcs_monotonic():
    prev = 0
    for sinr in range(-10, 35):
        index = mcs.sinr_to_mcs(float(sinr))
        assert index >= prev
        prev = index


def test_sinr_to_mcs_extremes():
    assert mcs.sinr_to_mcs(-20.0) == 0      # out of range: no service
    assert mcs.sinr_to_mcs(40.0) == mcs.MAX_MCS_INDEX


def test_sinr_to_mcs_respects_ue_cap():
    assert mcs.sinr_to_mcs(40.0, max_index=15) == 15


def test_sinr_to_mcs_rejects_bad_cap():
    with pytest.raises(ValueError):
        mcs.sinr_to_mcs(10.0, max_index=0)
    with pytest.raises(ValueError):
        mcs.sinr_to_mcs(10.0, max_index=99)


def test_bits_per_prb_zero_for_mcs_zero():
    assert mcs.bits_per_prb(0, 1) == 0


def test_bits_per_prb_scales_with_streams():
    one = mcs.bits_per_prb(10, 1)
    two = mcs.bits_per_prb(10, 2)
    assert two == 2 * one


def test_peak_rate_matches_paper():
    # Figure 11(b): maximum achievable rate ~1.8 Mbit/s/PRB.
    peak = mcs.max_bits_per_prb(spatial_streams=2)
    assert 1_700 <= peak <= 1_900  # bits per PRB per 1 ms subframe


def test_bits_per_prb_validation():
    with pytest.raises(ValueError):
        mcs.bits_per_prb(-1)
    with pytest.raises(ValueError):
        mcs.bits_per_prb(99)
    with pytest.raises(ValueError):
        mcs.bits_per_prb(5, spatial_streams=0)
    with pytest.raises(ValueError):
        mcs.bits_per_prb(5, spatial_streams=5)


def test_transport_block_bits():
    assert mcs.transport_block_bits(10, 15, 2) == \
        10 * mcs.bits_per_prb(15, 2)
    assert mcs.transport_block_bits(0, 15) == 0
    with pytest.raises(ValueError):
        mcs.transport_block_bits(-1, 15)


@given(st.floats(min_value=-20, max_value=40),
       st.integers(min_value=1, max_value=4))
def test_bits_per_prb_always_valid(sinr, streams):
    index = mcs.sinr_to_mcs(sinr)
    bits = mcs.bits_per_prb(index, streams)
    assert 0 <= bits <= mcs.max_bits_per_prb(4)
