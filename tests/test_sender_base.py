"""Tests for the shared Sender endpoint machinery."""

from typing import Optional

import pytest

from repro.baselines.base import (
    DUPACK_THRESHOLD,
    AckContext,
    AckingReceiver,
    CongestionControl,
    Sender,
)
from repro.net.link import DelayPipe, Receiver
from repro.net.packet import Packet
from repro.net.sim import Simulator


class FixedCc(CongestionControl):
    """Deterministic controller for exercising the Sender."""

    name = "fixed"

    def __init__(self, rate_bps=12e6, cwnd=None):
        self.rate = rate_bps
        self.cwnd = cwnd
        self.acks: list[AckContext] = []
        self.losses: list[int] = []
        self.timeouts = 0

    def on_ack(self, ctx):
        self.acks.append(ctx)

    def on_loss(self, now_us, lost_bits, inflight_bits):
        self.losses.append(lost_bits)

    def on_timeout(self, now_us):
        self.timeouts += 1

    def pacing_rate_bps(self, now_us):
        return self.rate

    def cwnd_bits(self, now_us):
        return self.cwnd


class Selective(Receiver):
    """Forwards packets to a receiver, dropping chosen sequence numbers."""

    def __init__(self, sink, drop=()):
        self.sink = sink
        self.drop = set(drop)

    def receive(self, packet):
        if packet.seq in self.drop and not packet.is_ack:
            return
        self.sink.receive(packet)


def _loop(sim, cc, drop=(), delay_us=5_000):
    """sender -> (drop filter) -> receiver -> ack pipe -> sender."""
    sender = Sender(sim, flow_id=1, cc=cc, egress=None)
    ack_pipe = DelayPipe(sim, sender, delay_us)
    receiver = AckingReceiver(sim, 1, ack_pipe)
    data_pipe = DelayPipe(sim, Selective(receiver, drop), delay_us)
    sender.egress = data_pipe
    return sender, receiver


def test_paces_at_requested_rate():
    sim = Simulator()
    cc = FixedCc(rate_bps=12e6)  # one 12 kbit packet per ms
    sender, receiver = _loop(sim, cc)
    sender.start()
    sim.run(until_us=1_000_000)
    assert sender.sent_packets == pytest.approx(1_000, abs=2)


def test_rtt_measured_from_ack_echo():
    sim = Simulator()
    cc = FixedCc()
    sender, _ = _loop(sim, cc, delay_us=7_000)
    sender.start()
    sim.run(until_us=100_000)
    assert sender.min_rtt_us == 14_000
    assert sender.srtt_us == pytest.approx(14_000, abs=10)


def test_cwnd_blocks_sending():
    sim = Simulator()
    # cwnd of 2 packets, RTT 10 ms -> at most ~2 packets per RTT.
    cc = FixedCc(rate_bps=120e6, cwnd=2 * 12_000)
    sender, _ = _loop(sim, cc, delay_us=5_000)
    sender.start()
    sim.run(until_us=100_000)
    assert sender.sent_packets <= 25
    assert sender.inflight_bits <= 2 * 12_000


def test_delivery_rate_sample_matches_pace():
    sim = Simulator()
    cc = FixedCc(rate_bps=12e6)
    sender, _ = _loop(sim, cc)
    sender.start()
    sim.run(until_us=500_000)
    rates = [ctx.delivery_rate_bps for ctx in cc.acks[10:]]
    assert min(rates) > 0.9 * 12e6
    assert max(rates) < 1.1 * 12e6


def test_gap_triggers_loss_after_dupacks():
    sim = Simulator()
    cc = FixedCc(rate_bps=12e6)
    sender, _ = _loop(sim, cc, drop={5})
    sender.start()
    sim.run(until_us=200_000)
    assert sender.lost_packets == 1
    assert cc.losses == [12_000]


def test_lost_bits_leave_inflight():
    sim = Simulator()
    cc = FixedCc(rate_bps=12e6, cwnd=8 * 12_000)
    sender, _ = _loop(sim, cc, drop={3})
    sender.start()
    sim.run(until_us=300_000)
    # The flow keeps running; inflight did not leak the lost packet.
    assert sender.sent_packets > 20
    assert sender.lost_packets == 1


def test_rto_fires_when_all_acks_stop():
    sim = Simulator()
    cc = FixedCc(rate_bps=12e6, cwnd=4 * 12_000)
    # Drop everything after seq 3: no more ACKs, RTO must fire.
    sender, _ = _loop(sim, cc, drop=set(range(4, 10_000)))
    sender.start()
    sim.run(until_us=2_000_000)
    assert cc.timeouts >= 1
    assert sender.timeouts >= 1


def test_stop_halts_transmission():
    sim = Simulator()
    cc = FixedCc(rate_bps=12e6)
    sender, _ = _loop(sim, cc)
    sender.start()
    sim.run(until_us=50_000)
    sender.stop()
    sent = sender.sent_packets
    sim.run(until_us=200_000)
    assert sender.sent_packets == sent
    assert not sender.running


def test_cannot_start_twice():
    sim = Simulator()
    sender, _ = _loop(sim, FixedCc())
    sender.start()
    with pytest.raises(RuntimeError):
        sender.start()


def test_zero_rate_pauses_then_resumes():
    sim = Simulator()
    cc = FixedCc(rate_bps=0.0)
    sender, _ = _loop(sim, cc)
    sender.start()
    sim.run(until_us=50_000)
    assert sender.sent_packets == 0
    cc.rate = 12e6
    sim.run(until_us=150_000)
    assert sender.sent_packets > 50


def test_receiver_records_one_way_delay():
    sim = Simulator()
    cc = FixedCc(rate_bps=12e6)
    sender, receiver = _loop(sim, cc, delay_us=9_000)
    sender.start()
    sim.run(until_us=100_000)
    assert receiver.stats.packets > 0
    assert all(d == 9_000 for d in receiver.stats.delay_us)


def test_on_ack_hook_called():
    sim = Simulator()
    cc = FixedCc(rate_bps=12e6)
    sender, _ = _loop(sim, cc)
    seen = []
    sender.on_ack_hook = seen.append
    sender.start()
    sim.run(until_us=50_000)
    assert len(seen) == sender.acked_packets > 0
