"""Tests for per-flow delivery logs."""

import pytest

from repro.net.flow import FlowStats


def test_empty_stats():
    s = FlowStats(1)
    assert s.packets == 0
    assert s.total_bits == 0
    assert s.average_throughput_bps() == 0.0
    assert s.delays_ms() == []


def test_record_accumulates():
    s = FlowStats(1)
    s.record(1_000, 12_000, 20_000)
    s.record(2_000, 12_000, 21_000)
    assert s.packets == 2
    assert s.total_bits == 24_000
    assert s.first_arrival_us == 1_000
    assert s.last_arrival_us == 2_000


def test_average_throughput_over_span():
    s = FlowStats(1)
    # 24 kbit over 1 ms span = 24 Mbit/s.
    s.record(0, 12_000, 0)
    s.record(1_000, 12_000, 0)
    assert s.average_throughput_bps() == pytest.approx(24e6)


def test_single_packet_throughput_is_zero_span():
    s = FlowStats(1)
    s.record(500, 12_000, 0)
    assert s.average_throughput_bps() == 0.0


def test_delays_in_milliseconds():
    s = FlowStats(1)
    s.record(0, 1, 25_500)
    assert s.delays_ms() == [25.5]
