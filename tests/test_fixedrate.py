"""Unit tests for the fixed-offered-load sender."""

import pytest

from repro.baselines.fixedrate import FixedRate


def test_constant_rate():
    cc = FixedRate(rate_bps=40e6)
    assert cc.pacing_rate_bps(0) == 40e6
    assert cc.pacing_rate_bps(10**9) == 40e6
    assert cc.cwnd_bits(0) is None  # open loop


def test_schedule_switches_rate():
    cc = FixedRate(rate_bps=40e6, schedule=[(0.0, 40e6), (2.0, 6e6)])
    assert cc.pacing_rate_bps(0) == 40e6
    assert cc.pacing_rate_bps(1_999_999) == 40e6
    assert cc.pacing_rate_bps(2_000_000) == 6e6
    assert cc.pacing_rate_bps(10**8) == 6e6


def test_schedule_before_first_entry_uses_base_rate():
    cc = FixedRate(rate_bps=1e6, schedule=[(1.0, 5e6)])
    assert cc.pacing_rate_bps(0) == 1e6
    assert cc.pacing_rate_bps(1_500_000) == 5e6


def test_validation():
    with pytest.raises(ValueError):
        FixedRate(rate_bps=-1)
    with pytest.raises(ValueError):
        FixedRate(schedule=[(1.0, 1e6), (1.0, 2e6)])
