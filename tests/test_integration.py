"""End-to-end integration tests reproducing the paper's key behaviours."""

import numpy as np
import pytest

from repro.core.client import INTERNET, WIRELESS
from repro.harness import (
    Experiment,
    FlowSpec,
    Scenario,
    jain_index,
    run_flow,
)
from repro.phy.carrier import CarrierConfig
from repro.traces.mobility import paper_trajectory


def _scenario(**kw):
    defaults = dict(
        name="it",
        carriers=[CarrierConfig(0, 10.0), CarrierConfig(1, 5.0)],
        aggregated_cells=2, mean_sinr_db=15.0, fading_std_db=0.5,
        busy=False, duration_s=3.0, seed=11)
    defaults.update(kw)
    return Scenario(**defaults)


@pytest.mark.parametrize("scheme", ["pbe", "bbr", "cubic", "reno",
                                    "verus", "sprout", "copa", "pcc",
                                    "vivace"])
def test_every_scheme_completes_a_flow(scheme):
    r = run_flow(_scenario(duration_s=2.0), scheme)
    assert r.summary.packets > 50
    assert r.summary.average_throughput_bps > 2e5
    assert r.summary.average_delay_ms > 0


def test_pbe_rides_at_capacity_with_low_delay():
    r = run_flow(_scenario(), "pbe")
    # 10+5 MHz at 15 dB SINR carries roughly 50-60 Mbit/s.
    assert r.summary.average_throughput_mbps > 35.0
    # One-way floor is ~20 ms wired + ~2 ms wireless; PBE should sit
    # within the two-HARQ-cycle margin of it.
    assert r.summary.average_delay_ms < 45.0
    assert r.state_fractions[WIRELESS] > 0.9


def test_pbe_beats_bbr_delay_at_similar_throughput():
    s = _scenario(duration_s=4.0)
    pbe = run_flow(s, "pbe")
    bbr = run_flow(s, "bbr")
    assert pbe.summary.average_throughput_bps > \
        0.9 * bbr.summary.average_throughput_bps
    assert pbe.summary.p95_delay_ms < bbr.summary.p95_delay_ms


def test_cubic_bufferbloats():
    s = _scenario(duration_s=3.0)
    cubic = run_flow(s, "cubic")
    pbe = run_flow(s, "pbe")
    assert cubic.summary.p95_delay_ms > 2 * pbe.summary.p95_delay_ms


def test_internet_bottleneck_detected_and_matched():
    s = _scenario(internet_rate_bps=10e6, internet_queue_packets=200,
                  duration_s=4.0)
    r = run_flow(s, "pbe")
    assert r.state_fractions[INTERNET] > 0.5
    assert r.summary.average_throughput_mbps == pytest.approx(9.3,
                                                              abs=1.2)
    # Queue bounded by BBR-style operation: delay stays sane.
    assert r.summary.p95_delay_ms < 150.0


def test_wireless_bottleneck_stays_wireless():
    r = run_flow(_scenario(), "pbe")
    assert r.state_fractions[INTERNET] < 0.1


def test_two_pbe_flows_share_fairly():
    exp = Experiment(_scenario(duration_s=3.0))
    exp.add_flow(FlowSpec(scheme="pbe", rnti=100))
    exp.add_flow(FlowSpec(scheme="pbe", rnti=101))
    results = exp.run()
    tputs = [r.summary.average_throughput_bps for r in results]
    assert jain_index(tputs) > 0.95


def test_pbe_shares_with_cubic():
    exp = Experiment(_scenario(duration_s=3.0))
    exp.add_flow(FlowSpec(scheme="pbe", rnti=100))
    exp.add_flow(FlowSpec(scheme="cubic", rnti=101))
    results = exp.run()
    tputs = {r.spec.scheme: r.summary.average_throughput_bps
             for r in results}
    # The base station's per-user fairness keeps CUBIC from starving
    # PBE (§6.4.3) — each gets a substantial share.
    assert tputs["pbe"] > 0.25 * tputs["cubic"]
    assert tputs["cubic"] > 0.25 * tputs["pbe"]


def test_carrier_aggregation_triggered_by_demand():
    s = _scenario()
    aggressive = run_flow(s, "pbe")
    conservative = run_flow(s, "sprout")
    assert aggressive.ca_activations >= 1
    assert conservative.ca_activations == 0


def test_mobility_tracked_without_delay_blowup():
    s = _scenario(duration_s=6.0)
    channel = paper_trajectory(seed=2)
    r = run_flow(s, "pbe", spec_overrides={"channel": channel})
    assert r.summary.average_throughput_mbps > 20.0
    assert r.summary.p95_delay_ms < 60.0


def test_competition_forces_rate_down_then_recovers():
    s = _scenario(duration_s=6.0, aggregated_cells=1)
    exp = Experiment(s)
    pbe = exp.add_flow(FlowSpec(scheme="pbe", rnti=100))
    # A controlled competitor active during the middle two seconds.
    exp.add_flow(FlowSpec(scheme="cbr", rnti=101, start_s=2.0,
                          duration_s=2.0, cc_kwargs={"rate_bps": 30e6}))
    results = exp.run()
    stats = results[0].stats
    arr = np.asarray(stats.arrival_us)
    bits = np.asarray(stats.size_bits)

    def rate(lo_s, hi_s):
        mask = (arr >= lo_s * 1e6) & (arr < hi_s * 1e6)
        return bits[mask].sum() / (hi_s - lo_s)

    # The open-loop competitor overdrives its share, so its
    # base-station queue keeps draining for over a second after it
    # stops sending; measure recovery after that.
    before, during, after = rate(1, 2), rate(2.5, 4), rate(5.4, 6)
    assert during < 0.8 * before     # yielded to the competitor
    assert after > 0.9 * before      # grabbed the capacity back
    # And delay never exploded while yielding.
    assert results[0].summary.p95_delay_ms < 80.0
