"""Tests for the parameter-update (control-plane) traffic generator."""

import numpy as np

from repro.cell.control_traffic import (
    CONTROL_RNTI_BASE,
    ControlTrafficGenerator,
)


def test_zero_rate_generates_nothing():
    gen = ControlTrafficGenerator(arrivals_per_subframe=0.0)
    assert all(gen.tick() == [] for _ in range(100))


def test_rntis_are_unique_and_in_control_range():
    gen = ControlTrafficGenerator(arrivals_per_subframe=2.0, seed=1)
    seen = []
    for _ in range(200):
        seen.extend(b.rnti for b in gen.tick())
    # Every burst in a subframe is a distinct appearance, but RNTIs of
    # *new* users never repeat after their burst ends.
    assert all(r >= CONTROL_RNTI_BASE for r in seen)


def test_arrival_rate_calibration():
    gen = ControlTrafficGenerator(arrivals_per_subframe=0.4, seed=2)
    new_users = set()
    for _ in range(10_000):
        for burst in gen.tick():
            new_users.add(burst.rnti)
    rate = len(new_users) / 10_000
    assert 0.36 < rate < 0.44


def test_dominant_profile_matches_figure7():
    # Figure 7(b) marginals: ~68% of users active exactly 1 subframe,
    # ~48% occupying exactly 4 PRBs.
    gen = ControlTrafficGenerator(arrivals_per_subframe=1.0, seed=3)
    profiles = {}
    for _ in range(5_000):
        for burst in gen.tick():
            if burst.rnti not in profiles:
                profiles[burst.rnti] = (burst.prbs,
                                        burst.remaining_subframes + 1)
    values = list(profiles.values())
    frac_1sf = np.mean([sf == 1 for _, sf in values])
    frac_4prb = np.mean([prbs == 4 for prbs, _ in values])
    assert 0.64 < frac_1sf < 0.80
    assert 0.42 < frac_4prb < 0.62


def test_multi_subframe_bursts_persist():
    gen = ControlTrafficGenerator(arrivals_per_subframe=1.0, seed=4)
    appearances = {}
    for _ in range(5_000):
        for burst in gen.tick():
            appearances[burst.rnti] = appearances.get(burst.rnti, 0) + 1
    assert max(appearances.values()) > 1  # some users last > 1 subframe


def test_negative_rate_rejected():
    import pytest
    with pytest.raises(ValueError):
        ControlTrafficGenerator(arrivals_per_subframe=-0.1)
