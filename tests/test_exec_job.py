"""Job fingerprints: deterministic, content-addressed, input-sensitive."""

import json

import pytest

from repro.exec import FINGERPRINT_VERSION, Job, canonical_json
from repro.harness import Scenario
from repro.phy.carrier import CarrierConfig


def tiny_scenario(**overrides):
    base = dict(name="fp", carriers=[CarrierConfig(0, 10.0)],
                aggregated_cells=1, mean_sinr_db=14.0,
                duration_s=1.0, seed=7)
    base.update(overrides)
    return Scenario(**base)


def test_fingerprint_is_stable_and_hex():
    job = Job(tiny_scenario(), "pbe")
    fp = job.fingerprint()
    assert fp == job.fingerprint()
    assert len(fp) == 64
    int(fp, 16)  # valid hex


def test_equal_inputs_equal_fingerprints():
    a = Job(tiny_scenario(), "pbe", {"cc_kwargs": {"x": 1, "y": 2}})
    b = Job(tiny_scenario(), "pbe", {"cc_kwargs": {"y": 2, "x": 1}})
    # dict insertion order must not matter (canonical JSON sorts keys)
    assert a.fingerprint() == b.fingerprint()


@pytest.mark.parametrize("overrides", [
    {"seed": 8},
    {"duration_s": 2.0},
    {"mean_sinr_db": 15.0},
    {"busy": True},
])
def test_scenario_changes_change_fingerprint(overrides):
    base = Job(tiny_scenario(), "pbe")
    changed = Job(tiny_scenario(**overrides), "pbe")
    assert base.fingerprint() != changed.fingerprint()


def test_scheme_and_spec_changes_change_fingerprint():
    base = Job(tiny_scenario(), "pbe")
    assert base.fingerprint() != Job(tiny_scenario(),
                                     "bbr").fingerprint()
    assert base.fingerprint() != Job(
        tiny_scenario(), "pbe",
        {"cc_kwargs": {"ramp_rtts": 0}}).fingerprint()


def test_to_dict_is_json_ready_and_versioned():
    job = Job(tiny_scenario(), "pbe", {"rnti": 105})
    data = json.loads(canonical_json(job.to_dict()))
    assert data["version"] == FINGERPRINT_VERSION
    assert data["scheme"] == "pbe"
    assert data["scenario"]["seed"] == 7
    assert data["spec_overrides"] == {"rnti": 105}


def test_label():
    assert Job(tiny_scenario(), "bbr").label == "fp/bbr"
