"""Tests for active-user filtering (§4.2.1, Figure 7)."""

from repro.monitor.filters import ActiveUserFilter
from repro.phy.dci import DciMessage, SubframeRecord


def _record(subframe, allocations, cell=0, total=100):
    rec = SubframeRecord(subframe, cell, total)
    for rnti, prbs in allocations:
        rec.messages.append(DciMessage(subframe, cell, rnti, prbs, 10, 1,
                                       tbs_bits=prbs * 500))
    return rec


def test_detects_all_users_in_window():
    f = ActiveUserFilter(window_subframes=10)
    f.update(_record(0, [(1, 50), (2, 4)]))
    f.update(_record(1, [(3, 10)]))
    assert f.detected_users() == {1, 2, 3}


def test_window_slides():
    f = ActiveUserFilter(window_subframes=2)
    f.update(_record(0, [(1, 50)]))
    f.update(_record(1, [(2, 50)]))
    f.update(_record(2, [(3, 50)]))
    assert f.detected_users() == {2, 3}


def test_one_subframe_users_filtered():
    # The dominant Figure-7 population: 4 PRBs for 1 subframe.
    f = ActiveUserFilter(window_subframes=40)
    f.update(_record(0, [(9, 4)]))
    for sf in range(1, 10):
        f.update(_record(sf, [(1, 30)]))
    assert 9 in f.detected_users()
    assert f.data_users() == {1}


def test_small_allocation_users_filtered():
    # Active often but on ≤ 4 PRBs: parameter-update traffic.
    f = ActiveUserFilter(window_subframes=40)
    for sf in range(10):
        f.update(_record(sf, [(9, 4), (1, 30)]))
    assert f.data_users() == {1}


def test_boundary_is_exclusive():
    # Ta > 1 and Pa > 4 strictly (§4.2.1): a user at exactly 2 subframes
    # and 5 PRBs average passes.
    f = ActiveUserFilter(window_subframes=40)
    f.update(_record(0, [(7, 5)]))
    f.update(_record(1, [(7, 5)]))
    assert f.data_users() == {7}


def test_include_self_always_counted():
    f = ActiveUserFilter(window_subframes=40)
    f.update(_record(0, [(1, 50)]))
    assert f.data_users(include=99) >= {99}
    assert f.data_user_count(include=99) >= 1


def test_count_is_at_least_one():
    f = ActiveUserFilter()
    assert f.data_user_count() == 1


def test_activity_aggregates_prbs():
    f = ActiveUserFilter(window_subframes=10)
    f.update(_record(0, [(1, 10), (1, 6)]))  # two DCIs, same user
    f.update(_record(1, [(1, 8)]))
    act = f.activity()[1]
    assert act.active_subframes == 2
    assert act.total_prbs == 24
    assert act.average_prbs == 12.0


def test_window_validation():
    import pytest
    with pytest.raises(ValueError):
        ActiveUserFilter(window_subframes=0)
