"""Batched subframe engine: byte-identity and RNG-stream preservation.

The batched engine (block channel sampling, idle-cell fast-forward,
columnar DCI ingest) must be *byte-identical* to the scalar reference —
same packet logs, same estimator state, same RNG stream consumption.
These tests compare whole-run SHA-256 fingerprints across the pinned
6-configuration suite plus randomized configurations covering all three
channel models, carrier aggregation on/off and fault injection on/off,
and pin the stream-preservation tricks (block draws, speculative
rollback, idle fast-forward) at the unit level.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cell.control_traffic import ControlTrafficGenerator
from repro.harness import FlowSpec, Scenario
from repro.harness.fingerprint import fingerprint_configs, run_fingerprint
from repro.monitor.bursttracker import BurstTracker
from repro.monitor.occupancy import OccupancyAnalyzer
from repro.phy.channel import (GaussMarkovChannel, StaticChannel,
                               TraceChannel)
from repro.phy.dci import DciMessage, SubframeBatch, SubframeRecord

#: Short but non-trivial: long enough for CA activation, window closes
#: and control-burst catch-up to all fire.
DURATION_S = 0.6

SUBFRAME_US = 1_000


# ---------------------------------------------------------------------------
# Whole-run byte identity: pinned suite
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(fingerprint_configs(0.1)))
def test_pinned_suite_batched_matches_scalar(name):
    scenario, specs = fingerprint_configs(DURATION_S)[name]
    batched = run_fingerprint(scenario, specs, batched=True)
    # Rebuild the config: channel objects are stateful and must be
    # fresh for the second engine.
    scenario, specs = fingerprint_configs(DURATION_S)[name]
    scalar = run_fingerprint(scenario, specs, batched=False)
    assert batched == scalar


# ---------------------------------------------------------------------------
# Whole-run byte identity: randomized configurations
# ---------------------------------------------------------------------------

N_RANDOM_CONFIGS = 10


def _random_params(seed: int) -> dict:
    rng = random.Random(0xBA7C4 + seed)
    busy = rng.random() < 0.6
    return {
        "channel": rng.choice(["static", "gauss", "trace"]),
        "cells": rng.choice([1, 2, 3]),
        "busy": busy,
        "background_users": rng.randrange(1, 5) if busy else 0,
        "mean_sinr_db": round(rng.uniform(9.0, 24.0), 1),
        "cqi_delay": rng.choice([0, 0, 0, 3]),
        "faulted": rng.random() < 0.4,
        "scheme": rng.choice(["pbe", "pbe", "pbe", "bbr"]),
    }


def _random_config(seed: int) -> tuple[Scenario, list[FlowSpec]]:
    params = _random_params(seed)
    scenario = Scenario(
        name=f"rand-{seed}", aggregated_cells=params["cells"],
        mean_sinr_db=params["mean_sinr_db"], busy=params["busy"],
        background_users=params["background_users"],
        cqi_delay_subframes=params["cqi_delay"],
        duration_s=DURATION_S, seed=3_000 + seed)
    kwargs = {}
    if params["channel"] == "gauss":
        kwargs["channel"] = GaussMarkovChannel(
            mean_sinr_db=params["mean_sinr_db"], std_db=3.0, memory=0.9,
            coherence_us=8_000, seed=60 + seed)
    elif params["channel"] == "trace":
        kwargs["channel"] = TraceChannel(
            [(0, -95.0), (200_000, -89.0), (450_000, -102.0),
             (DURATION_S * 1e6, -93.0)],
            fading_std_db=1.0, seed=60 + seed)
    if params["faulted"]:
        kwargs["faults"] = {"seed": 90 + seed, "dci_miss_rate": 0.04,
                            "dci_false_rate": 0.002,
                            "ack_loss_rate": 0.01}
    return scenario, [FlowSpec(scheme=params["scheme"], **kwargs)]


def test_randomized_pool_covers_the_matrix():
    """The random pool must exercise every axis the tentpole touches."""
    pool = [_random_params(seed) for seed in range(N_RANDOM_CONFIGS)]
    assert {p["channel"] for p in pool} == {"static", "gauss", "trace"}
    assert {p["cells"] > 1 for p in pool} == {True, False}   # CA on/off
    assert {p["faulted"] for p in pool} == {True, False}
    assert {p["busy"] for p in pool} == {True, False}


@pytest.mark.parametrize("seed", range(N_RANDOM_CONFIGS))
def test_randomized_configs_batched_matches_scalar(seed):
    scenario, specs = _random_config(seed)
    batched = run_fingerprint(scenario, specs, batched=True)
    scenario, specs = _random_config(seed)
    scalar = run_fingerprint(scenario, specs, batched=False)
    assert batched == scalar


# ---------------------------------------------------------------------------
# Whole-run byte identity: metro scale (idle-cell fast-forward)
# ---------------------------------------------------------------------------

def _sparse_metro_params():
    """A ≥100-cell, mostly-idle metro shard (one hotspot fleet).

    This is the workload the idle-cell fast-forward exists for: at any
    instant all but a handful of cells are unobservable, so the batched
    engine skips them wholesale while the scalar reference ticks every
    cell every subframe.  The fingerprints must still match exactly.
    """
    from repro.metro import GridSpec, MetroSet, build_grid, shard_jobs
    mset = MetroSet(
        name="sparse-fp", description="batch-engine fixture",
        grid=GridSpec(name="sparse-fp", n_cells=102,
                      hotspot_fraction=0.01, seed=21),
        hours=(3, 14), hour_s=0.3, shard_cells=102,
        users_scale=0.005, max_users_per_cell=2, walkers_per_shard=1,
        fleet=("pbe",))
    (job,) = shard_jobs(mset, grid=build_grid(mset.grid))
    return job.params


def test_sparse_metro_batched_matches_scalar_and_is_faster():
    import time

    from repro.metro import shard_fingerprint
    params = _sparse_metro_params()
    assert len(params["cells"]) >= 100
    assert sum(1 for c in params["cells"] if c["busy"]) <= 2

    t0 = time.perf_counter()
    batched = shard_fingerprint(params, batched=True)
    t1 = time.perf_counter()
    scalar = shard_fingerprint(params, batched=False)
    t2 = time.perf_counter()
    assert batched == scalar
    # Record the fast-forward benefit (the metro_smoke bench gates the
    # ≥2x claim on a longer run; asserting a wall-clock ratio here
    # would be flaky under CI load, so the test only reports it).
    speedup = (t2 - t1) / max(t1 - t0, 1e-9)
    print(f"\nsparse-metro fast-forward: batched {t1 - t0:.3f}s, "
          f"scalar {t2 - t1:.3f}s, speedup {speedup:.2f}x")


# ---------------------------------------------------------------------------
# RNG-stream preservation: block channel sampling
# ---------------------------------------------------------------------------

def _channel_factories():
    return {
        "static": lambda: StaticChannel(15.0, fading_std_db=2.0, seed=9),
        "gauss": lambda: GaussMarkovChannel(
            mean_sinr_db=14.0, std_db=3.0, memory=0.9,
            coherence_us=8_000, seed=9),
        "trace": lambda: TraceChannel(
            [(0, -95.0), (200_000, -90.0), (500_000, -100.0)],
            fading_std_db=1.0, seed=9),
    }


@pytest.mark.parametrize("kind", sorted(_channel_factories()))
def test_sinr_block_is_bitwise_identical_to_scalar(kind):
    make = _channel_factories()[kind]
    scalar, blocked = make(), make()
    now = 0
    for _ in range(4):
        expected = np.array([scalar.sinr_db(now + k * SUBFRAME_US)
                             for k in range(64)])
        got = blocked.sinr_block(now, 64)
        # Bitwise, not approx: the engines must agree to the last ulp.
        assert got.tobytes() == expected.tobytes()
        now += 64 * SUBFRAME_US


@pytest.mark.parametrize("kind", sorted(_channel_factories()))
def test_block_and_scalar_interleave_preserves_the_stream(kind):
    """A block draw consumes the RNG exactly like 64 scalar draws, so
    block and scalar sampling can be freely interleaved."""
    make = _channel_factories()[kind]
    reference, mixed = make(), make()
    expected = [reference.sinr_db(k * SUBFRAME_US) for k in range(192)]
    got = list(mixed.sinr_block(0, 64))
    got += [mixed.sinr_db((64 + k) * SUBFRAME_US) for k in range(32)]
    got += list(mixed.sinr_block(96 * SUBFRAME_US, 96))
    assert np.array(got).tobytes() == np.array(expected).tobytes()


@pytest.mark.parametrize("kind", sorted(_channel_factories()))
def test_checkpoint_restore_rewinds_the_stream(kind):
    """The engine speculatively draws a block and rolls back when a
    user leaves mid-block; restore must rewind the stream exactly."""
    make = _channel_factories()[kind]
    channel = make()
    channel.sinr_block(0, 64)                   # advance somewhere
    state = channel.state_checkpoint()
    first = channel.sinr_block(64 * SUBFRAME_US, 64)
    channel.state_restore(state)
    again = channel.sinr_block(64 * SUBFRAME_US, 64)
    assert again.tobytes() == first.tobytes()
    # Partial re-consume after restore matches the block's prefix.
    channel.state_restore(state)
    prefix = [channel.sinr_db((64 + k) * SUBFRAME_US) for k in range(17)]
    assert np.array(prefix).tobytes() == first[:17].tobytes()


# ---------------------------------------------------------------------------
# RNG-stream preservation: idle-cell control-traffic fast-forward
# ---------------------------------------------------------------------------

def _burst_snapshot(bursts):
    return [(b.rnti, b.prbs, b.remaining_subframes) for b in bursts]


@pytest.mark.parametrize("rate", [0.02, 0.15])
def test_advance_idle_reproduces_the_tick_timeline(rate):
    """The catch-up loop (advance_idle + tick) must emit the same burst
    timeline and leave the same RNG state as per-subframe ticking."""
    n = 600
    reference = ControlTrafficGenerator(rate, seed=3)
    fast = ControlTrafficGenerator(rate, seed=3)
    expected = [_burst_snapshot(reference.tick()) for _ in range(n)]

    got = []
    while len(got) < n:
        skipped = fast.advance_idle(n - len(got))
        got.extend([] for _ in range(skipped))
        if len(got) < n:
            got.append(_burst_snapshot(fast.tick()))
    assert got == expected
    assert (fast._rng.bit_generator.state
            == reference._rng.bit_generator.state)


def test_advance_idle_stops_before_a_bursty_subframe():
    generator = ControlTrafficGenerator(0.3, seed=1)
    probe = ControlTrafficGenerator(0.3, seed=1)
    skipped = generator.advance_idle(500)
    for _ in range(skipped):
        assert probe.tick() == []
    assert probe.tick() != []          # the subframe advance stopped at
    assert skipped < 500


def test_advance_idle_refuses_while_bursts_in_flight():
    generator = ControlTrafficGenerator(0.5, seed=2)
    while not generator._active:
        generator.tick()
    assert generator.advance_idle(100) == 0


# ---------------------------------------------------------------------------
# Columnar analytics ingest (occupancy / bursttracker)
# ---------------------------------------------------------------------------

def _synth_records(n_subframes: int, seed: int) -> list[SubframeRecord]:
    rng = random.Random(seed)
    records = []
    for sf in range(n_subframes):
        messages = []
        budget = 100
        for _ in range(rng.randrange(0, 6)):
            prbs = min(rng.choice([0, 0, 3, 10, 25]), budget)
            budget -= prbs
            messages.append(DciMessage(
                sf, 0, rng.choice([1, 2, 3, 17]), prbs,
                rng.randrange(18), 2, tbs_bits=prbs * 100,
                new_data=rng.random() < 0.9,
                is_control=rng.random() < 0.1))
        records.append(SubframeRecord(sf, 0, 100, messages))
    return records


def _feed_in_batches(records, sinks, seed):
    rng = random.Random(seed)
    batch = SubframeBatch(0, 100)
    i = 0
    while i < len(records):
        n = rng.randrange(1, 97)          # irregular block boundaries
        batch.clear()
        for record in records[i:i + n]:
            batch.append_record(record)
        for sink in sinks:
            sink.ingest_batch(batch)
        i += n


def test_occupancy_batch_ingest_matches_scalar():
    records = _synth_records(2_500, seed=7)
    scalar = OccupancyAnalyzer(0, bucket_subframes=100)
    batched = OccupancyAnalyzer(0, bucket_subframes=100)
    for record in records:
        scalar.update(record)
    _feed_in_batches(records, [batched], seed=8)
    assert batched.summary() == scalar.summary()
    assert batched.utilization_series == scalar.utilization_series
    assert batched.users_series == scalar.users_series
    assert ({r: vars(u) for r, u in batched.users.items()}
            == {r: vars(u) for r, u in scalar.users.items()})


def test_bursttracker_batch_ingest_matches_scalar():
    records = _synth_records(2_500, seed=7)
    scalar = BurstTracker(1, window_subframes=100)
    batched = BurstTracker(1, window_subframes=100)
    for record in records:
        scalar.update(record)
    _feed_in_batches(records, [batched], seed=8)
    assert batched.windows == scalar.windows
    assert batched.classifications == scalar.classifications
    # Open-window float state matches exactly (same summation order).
    assert batched._share_sum == scalar._share_sum
    assert batched._count == scalar._count


def test_batch_round_trips_to_records():
    records = _synth_records(300, seed=11)
    batch = SubframeBatch(0, 100)
    for record in records:
        batch.append_record(record)
    assert batch.to_records() == records
    assert len(batch) == 300
    assert batch.n_messages == sum(len(r.messages) for r in records)
    batch.clear()
    assert len(batch) == 0 and batch.n_messages == 0
