"""§7 power-consumption claims about the decoder's extra work.

"The number of extra control messages inside each subframe the device
needs to decode is very small — there are less than 4 control messages
inside more than 95% of subframes."
"""

from repro.harness import Experiment, FlowSpec, Scenario


def test_busy_cell_control_messages_per_subframe():
    scenario = Scenario(name="power", aggregated_cells=1,
                        mean_sinr_db=17.0, busy=True,
                        background_users=3, duration_s=4.0, seed=33)
    experiment = Experiment(scenario)
    handle = experiment.add_flow(FlowSpec(scheme="pbe"))
    per_subframe = []
    experiment.network.attach_monitor(
        0, lambda record: per_subframe.append(len(record.messages)))
    experiment.run()

    # Our busy cells carry more simultaneous data users than the
    # paper's (which measured >95% of subframes under 4 messages); the
    # claim that decode work stays small per subframe still holds.
    frac_small = sum(1 for n in per_subframe if n < 5) / len(per_subframe)
    assert frac_small > 0.90
    assert max(per_subframe) < 12

    # The decoder-side statistics agree with the raw records.
    decoder = handle.monitor.decoders[0]
    assert decoder.subframes_decoded == len(per_subframe)
    mean = decoder.mean_messages_per_subframe
    assert mean == sum(per_subframe) / len(per_subframe)
    assert mean < 4.0


def test_idle_cell_decoder_mostly_sees_own_messages():
    scenario = Scenario(name="power-idle", aggregated_cells=1,
                        mean_sinr_db=17.0, busy=False,
                        duration_s=2.0, seed=34)
    experiment = Experiment(scenario)
    handle = experiment.add_flow(FlowSpec(scheme="pbe"))
    experiment.run()
    decoder = handle.monitor.decoders[0]
    # On an idle cell the flow's own grant dominates: ~1 message/sf.
    assert decoder.mean_messages_per_subframe < 1.5
