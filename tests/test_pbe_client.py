"""Unit tests for the PBE-CC mobile client (§4.2.2)."""

import pytest

from repro.core.client import (
    DELAY_MARGIN_US,
    INTERNET,
    WIRELESS,
    PbeClient,
)
from repro.monitor.pbe import PbeMonitor
from repro.net.link import PacketSink
from repro.net.packet import Packet
from repro.net.sim import Simulator
from repro.phy.dci import DciMessage, SubframeRecord

OWN = 100


def _client(sim, rate=1000, ber=1e-6):
    monitor = PbeMonitor(OWN, {0: 100}, primary_cell=0,
                         own_rate_hint=lambda: (rate, ber))
    sink = PacketSink(sim)
    client = PbeClient(sim, flow_id=1, uplink=sink, monitor=monitor)
    return client, monitor, sink


def _feed_monitor(monitor, subframe, prbs=50, bpp=1000):
    rec = SubframeRecord(subframe, 0, 100)
    if prbs:
        rec.messages.append(DciMessage(subframe, 0, OWN, prbs, 12, 2,
                                       tbs_bits=prbs * bpp))
    monitor.decoder_callback(0)(rec)


def _deliver(sim, client, delay_us, n=1, gap_us=1_000, srtt_us=40_000):
    """Simulate n packets arriving with the given one-way delay."""
    seq = getattr(client, "_test_seq", 0)
    for _ in range(n):
        sim.run(until_us=sim.now + gap_us)
        p = Packet(1, seq, sent_time_us=sim.now - delay_us)
        p.meta["srtt_us"] = srtt_us
        client.receive(p)
        seq += 1
    client._test_seq = seq
    return seq


def test_acks_carry_pbe_feedback():
    sim = Simulator()
    client, monitor, sink = _client(sim)
    for sf in range(40):
        _feed_monitor(monitor, sf)
    _deliver(sim, client, delay_us=20_000, n=3)
    assert len(sink.packets) == 3
    fb = sink.packets[-1].feedback
    assert fb.target_rate_bps > 0
    assert not fb.internet_bottleneck


def test_receive_rate_window_stays_bounded_in_wireless_state():
    """Regression: the receive-rate deque was appended on every packet
    but only pruned on the Internet-state branch, so a flow that stayed
    wireless-bottlenecked grew it by one entry per packet forever."""
    sim = Simulator()
    client, monitor, _ = _client(sim)
    for sf in range(40):
        _feed_monitor(monitor, sf)
    srtt_us = 40_000
    n = 2_000
    _deliver(sim, client, delay_us=20_000, n=n, srtt_us=srtt_us)
    assert client.state == WIRELESS            # never left wireless
    # Entries older than one RTprop are pruned on every feedback call:
    # at 1 ms spacing the window holds ~srtt/gap entries, not n.
    assert len(client._recent) <= srtt_us // 1_000 + 1
    assert client._recent_bits == sum(b for _, b in client._recent)


def test_dprop_tracks_minimum():
    sim = Simulator()
    client, monitor, _ = _client(sim)
    _feed_monitor(monitor, 0)
    _deliver(sim, client, delay_us=30_000, n=5)
    _deliver(sim, client, delay_us=22_000, n=1)
    _deliver(sim, client, delay_us=35_000, n=5)
    assert client.dprop_us == 22_000
    assert client.delay_threshold_us == 22_000 + DELAY_MARGIN_US


def test_margin_matches_paper():
    # Dth = Dprop + 3·8 + 3 ms.
    assert DELAY_MARGIN_US == 27_000


def test_stays_wireless_below_threshold():
    sim = Simulator()
    client, monitor, _ = _client(sim)
    for sf in range(40):
        _feed_monitor(monitor, sf)
    _deliver(sim, client, delay_us=20_000, n=200)
    # Delay jitter below the margin never triggers the switch.
    _deliver(sim, client, delay_us=40_000, n=200)
    assert client.state == WIRELESS


def test_switches_to_internet_after_npkt_consecutive():
    sim = Simulator()
    client, monitor, _ = _client(sim)
    for sf in range(40):
        _feed_monitor(monitor, sf)
    _deliver(sim, client, delay_us=20_000, n=50)
    assert client.state == WIRELESS
    _deliver(sim, client, delay_us=60_000, n=200)  # > Dprop + 27 ms
    assert client.state == INTERNET
    assert any(state == INTERNET for _, state in client.state_changes)


def test_brief_spike_does_not_switch():
    sim = Simulator()
    client, monitor, _ = _client(sim)
    for sf in range(40):
        _feed_monitor(monitor, sf)
    _deliver(sim, client, delay_us=20_000, n=50)
    _deliver(sim, client, delay_us=60_000, n=2)   # short spike
    _deliver(sim, client, delay_us=20_000, n=50)
    assert client.state == WIRELESS


def test_internet_feedback_carries_state_bit_and_fair_share():
    sim = Simulator()
    client, monitor, sink = _client(sim)
    for sf in range(40):
        _feed_monitor(monitor, sf)
    _deliver(sim, client, delay_us=20_000, n=20)
    _deliver(sim, client, delay_us=60_000, n=200)
    fb = sink.packets[-1].feedback
    assert fb.internet_bottleneck
    assert fb.fair_rate_bps > 0


def test_switch_back_requires_low_delay_and_fair_rate():
    sim = Simulator()
    client, monitor, _ = _client(sim)
    for sf in range(40):
        _feed_monitor(monitor, sf)
    _deliver(sim, client, delay_us=20_000, n=20)
    _deliver(sim, client, delay_us=60_000, n=200)
    assert client.state == INTERNET
    # Low delay but tiny receive rate (huge gaps): stays in internet.
    _deliver(sim, client, delay_us=20_000, n=30, gap_us=50_000)
    assert client.state == INTERNET
    # Low delay at a rate near the fair share: back to wireless.
    _deliver(sim, client, delay_us=20_000, n=400, gap_us=120)
    assert client.state == WIRELESS


def test_state_fractions_sum_to_one():
    sim = Simulator()
    client, monitor, _ = _client(sim)
    _feed_monitor(monitor, 0)
    _deliver(sim, client, delay_us=20_000, n=10)
    fractions = client.state_fractions(sim.now)
    assert fractions[WIRELESS] + fractions[INTERNET] == pytest.approx(1.0)
    assert fractions[WIRELESS] > 0.99
