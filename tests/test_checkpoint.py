"""Mid-run checkpoint/restore: crash-consistent, byte-identical resume.

The checkpoint subsystem's contract is absolute: a run that snapshots
on a cadence, dies at an arbitrary subframe boundary and resumes from
the newest valid snapshot must produce the *byte-identical* whole-run
fingerprint of an uninterrupted run — packet logs, estimator state,
RNG streams and all.  These tests drive that contract over the pinned
6-configuration suite, randomized configurations crossed with
randomized kill points, a true SIGKILL through the worker entry point,
and the corruption paths (truncated payloads, unknown schema versions)
that must quarantine bad snapshots and fall back instead of crashing.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.exec import ChaosSpec, ParallelRunner, job_from_wire, job_to_wire
from repro.exec.job import Job
from repro.harness import Experiment, FlowSpec, Scenario
from repro.harness.checkpoint import (
    SNAPSHOT_SUFFIX,
    CheckpointConfig,
    CheckpointDrain,
    CheckpointManager,
    SnapshotCorrupt,
    clear_drain,
    count_quarantined,
    read_snapshot,
    request_drain,
    snapshot_path,
    write_snapshot,
)
from repro.harness.fingerprint import (
    digest_run,
    fingerprint_configs,
    run_fingerprint,
)
from repro.net.units import us_from_seconds
from repro.phy.channel import GaussMarkovChannel, StaticChannel

#: Long enough for CA activation and control-burst catch-up to fire,
#: short enough to keep the suite's many full runs affordable.
DURATION_S = 0.4
SUBFRAME_US = 1_000


def _build(scenario: Scenario, specs: list) -> tuple:
    experiment = Experiment(scenario, batched=True)
    handles = [experiment.add_flow(spec) for spec in specs]
    return experiment, handles


def _resume_digest(scenario: Scenario, specs: list, directory,
                   interval: int) -> str:
    """Restore the newest snapshot under ``directory`` and finish."""
    experiment, handles = _build(scenario, specs)
    manager = CheckpointManager(CheckpointConfig(
        directory=str(directory), interval_subframes=interval))
    manager.try_restore(experiment)
    results = experiment.run(checkpoint=manager)
    return digest_run(experiment, handles, results)


# ---------------------------------------------------------------------------
# Pinned suite: interrupt at a mid-run boundary, resume, compare
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(fingerprint_configs(0.1)))
def test_pinned_suite_resume_matches_straight(name, tmp_path):
    # Configs embed stateful channel objects: rebuild them fresh for
    # every run or the first run's RNG consumption leaks into the next.
    scenario, specs = fingerprint_configs(DURATION_S)[name]
    straight = run_fingerprint(scenario, specs)

    interval = 120
    stop_us = us_from_seconds(DURATION_S / 2)
    scenario, specs = fingerprint_configs(DURATION_S)[name]
    experiment, _ = _build(scenario, specs)
    manager = CheckpointManager(CheckpointConfig(
        directory=str(tmp_path), interval_subframes=interval))
    manager.run_to(experiment, stop_us)  # "crash" here: discard it
    assert manager.saved >= 1

    scenario, specs = fingerprint_configs(DURATION_S)[name]
    assert _resume_digest(scenario, specs, tmp_path,
                          interval) == straight


# ---------------------------------------------------------------------------
# Randomized configurations x randomized kill points
# ---------------------------------------------------------------------------

def _random_config(rng: random.Random) -> tuple:
    busy = rng.random() < 0.5
    scenario = Scenario(
        name=f"ck-rand-{rng.randrange(1 << 16)}",
        aggregated_cells=rng.choice((1, 2)),
        mean_sinr_db=rng.uniform(12.0, 22.0),
        busy=busy,
        background_users=rng.randrange(1, 4) if busy else 0,
        duration_s=DURATION_S,
        seed=rng.randrange(1, 1 << 30))
    if rng.random() < 0.5:
        channel = GaussMarkovChannel(
            mean_sinr_db=rng.uniform(12.0, 20.0), std_db=2.5,
            memory=0.9, coherence_us=8_000,
            seed=rng.randrange(1, 1 << 30))
    else:
        channel = StaticChannel(rng.uniform(12.0, 22.0),
                                fading_std_db=1.0,
                                seed=rng.randrange(1, 1 << 30))
    spec_kwargs = {"scheme": rng.choice(("pbe", "pbe", "bbr")),
                   "channel": channel}
    return scenario, spec_kwargs


def _fresh_specs(rng_seed: int) -> list:
    """Specs with a *fresh* channel object (stateful; never reuse)."""
    _, kwargs = _random_config(random.Random(rng_seed))
    return [FlowSpec(**kwargs)]


def test_randomized_configs_and_kill_points(tmp_path):
    """>= 10 randomized (config, kill-subframe) points, all identical."""
    duration_subframes = int(DURATION_S * 1000)
    outer = random.Random(0xC4EC)
    kill_points = 0
    for case in range(3):
        seed = outer.randrange(1 << 30)
        scenario, _ = _random_config(random.Random(seed))
        straight = run_fingerprint(scenario, _fresh_specs(seed))
        for point in range(4):
            interval = outer.randrange(60, 200)
            stop = outer.randrange(1, duration_subframes)
            root = tmp_path / f"case{case}-kill{point}"
            scenario, _ = _random_config(random.Random(seed))
            experiment, _ = _build(scenario, _fresh_specs(seed))
            manager = CheckpointManager(CheckpointConfig(
                directory=str(root), interval_subframes=interval))
            manager.run_to(experiment, stop * SUBFRAME_US)

            scenario, _ = _random_config(random.Random(seed))
            resumed = _resume_digest(scenario, _fresh_specs(seed),
                                     root, interval)
            assert resumed == straight, (
                f"divergence: seed={seed} interval={interval} "
                f"kill_subframe={stop}")
            kill_points += 1
    assert kill_points >= 10


# ---------------------------------------------------------------------------
# A true SIGKILL through the worker entry point
# ---------------------------------------------------------------------------

def test_sigkill_mid_job_then_resume_byte_identical(tmp_path):
    """kill_at_subframe SIGKILLs the process right after a snapshot;
    re-executing the job restores it and matches a straight run."""
    from repro.exec.worker import execute_job

    def make_job() -> Job:
        return Job(scenario=Scenario(name="ck-sigkill", busy=True,
                                     background_users=3,
                                     aggregated_cells=2,
                                     duration_s=DURATION_S, seed=91),
                   scheme="pbe")

    straight = execute_job(make_job())
    child = textwrap.dedent(f"""
        import sys
        sys.path.insert(0, {repr(str(_repo_src()))})
        from repro.exec.job import Job
        from repro.exec.worker import execute_job
        from repro.harness import Scenario
        job = Job(scenario=Scenario(name="ck-sigkill", busy=True,
                                    background_users=3,
                                    aggregated_cells=2,
                                    duration_s={DURATION_S}, seed=91),
                  scheme="pbe")
        job.checkpoint = {{"dir": {repr(str(tmp_path))},
                          "interval_subframes": 150,
                          "kill_at_subframe": 230}}
        execute_job(job)
        raise SystemExit("survived the kill subframe")
    """)
    proc = subprocess.run([sys.executable, "-c", child],
                          capture_output=True, text=True)
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    snapshots = sorted(tmp_path.glob(f"*{SNAPSHOT_SUFFIX}"))
    assert snapshots, "no snapshot persisted before the SIGKILL"
    assert snapshots[-1].name == "ckpt-0000000230.snap"

    job = make_job()
    job.checkpoint = {"dir": str(tmp_path), "interval_subframes": 150}
    resumed = execute_job(job)
    assert json.dumps(resumed, sort_keys=True) == \
        json.dumps(straight, sort_keys=True)


def _repo_src():
    import repro
    return os.path.dirname(os.path.dirname(repro.__file__))


# ---------------------------------------------------------------------------
# Corruption: truncation, unknown versions, quarantine accounting
# ---------------------------------------------------------------------------

def _config_for_corruption() -> tuple:
    scenario = Scenario(name="ck-corrupt", busy=True,
                        background_users=2, aggregated_cells=2,
                        duration_s=DURATION_S, seed=55)
    return scenario, [FlowSpec(scheme="pbe")]


def _snapshot_two(tmp_path, interval: int = 120) -> None:
    scenario, specs = _config_for_corruption()
    experiment, _ = _build(scenario, specs)
    # wall_budget=None: this helper needs a snapshot at *every*
    # boundary (the corruption tests truncate the newest and fall back
    # to the older one), not the amortized production cadence.
    manager = CheckpointManager(CheckpointConfig(
        directory=str(tmp_path), interval_subframes=interval,
        wall_budget=None))
    manager.run_to(experiment, 2 * interval * SUBFRAME_US + 500)
    assert manager.saved >= 2


def test_truncated_snapshot_quarantined_then_older_used(tmp_path):
    scenario, specs = _config_for_corruption()
    straight = run_fingerprint(scenario, specs)

    _snapshot_two(tmp_path)
    newest = sorted(tmp_path.glob(f"*{SNAPSHOT_SUFFIX}"))[-1]
    blob = newest.read_bytes()
    newest.write_bytes(blob[:len(blob) // 2])  # torn write

    scenario, specs = _config_for_corruption()
    experiment, handles = _build(scenario, specs)
    manager = CheckpointManager(CheckpointConfig(
        directory=str(tmp_path), interval_subframes=120))
    restored = manager.try_restore(experiment)
    assert restored == 120  # fell back to the older snapshot
    assert manager.quarantined == 1
    assert count_quarantined(tmp_path) == 1
    results = experiment.run(checkpoint=manager)
    assert digest_run(experiment, handles, results) == straight


def test_unknown_version_quarantined_then_from_scratch(tmp_path):
    scenario, specs = _config_for_corruption()
    straight = run_fingerprint(scenario, specs)

    # A single snapshot from the future: nothing valid remains after
    # quarantining it, so the run must fall back to from-scratch.
    path = write_snapshot(tmp_path, 100, {"sim": {}})
    blob = path.read_bytes()
    header, _, payload = blob.partition(b"\n")
    doctored = json.loads(header)
    doctored["version"] = 99
    path.write_bytes(json.dumps(doctored, sort_keys=True).encode()
                     + b"\n" + payload)

    scenario, specs = _config_for_corruption()
    experiment, handles = _build(scenario, specs)
    manager = CheckpointManager(CheckpointConfig(
        directory=str(tmp_path), interval_subframes=120))
    assert manager.try_restore(experiment) is None
    assert manager.quarantined == 1
    assert count_quarantined(tmp_path) == 1
    results = experiment.run(checkpoint=manager)
    assert digest_run(experiment, handles, results) == straight


def test_read_snapshot_rejects_bad_checksum(tmp_path):
    path = write_snapshot(tmp_path, 7, {"sim": {"now": 0}})
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(SnapshotCorrupt):
        read_snapshot(path)


# ---------------------------------------------------------------------------
# Drain: SIGTERM-style stop at the next boundary, then resume
# ---------------------------------------------------------------------------

def test_drain_stops_at_boundary_and_resume_matches(tmp_path):
    scenario, specs = _config_for_corruption()
    straight = run_fingerprint(scenario, specs)

    scenario, specs = _config_for_corruption()
    experiment, _ = _build(scenario, specs)
    manager = CheckpointManager(CheckpointConfig(
        directory=str(tmp_path), interval_subframes=100))
    request_drain()
    try:
        with pytest.raises(CheckpointDrain):
            experiment.run(checkpoint=manager)
    finally:
        clear_drain()
    assert experiment.sim.now == 100 * SUBFRAME_US
    assert snapshot_path(tmp_path, 100).exists()

    scenario, specs = _config_for_corruption()
    assert _resume_digest(scenario, specs, tmp_path, 100) == straight


def test_checkpoint_drain_is_an_oserror():
    # The runner's crash-retry machinery catches OSError: a drained
    # job must re-enter the queue, not surface as a hard failure.
    assert issubclass(CheckpointDrain, OSError)


# ---------------------------------------------------------------------------
# Exec integration: wire format, fingerprints, runner stats
# ---------------------------------------------------------------------------

def _tiny_job() -> Job:
    return Job(scenario=Scenario(name="ck-wire", duration_s=0.1,
                                 seed=3),
               scheme="reno")


def test_wire_roundtrip_carries_checkpoint_outside_fingerprint():
    plain = _tiny_job()
    tagged = _tiny_job()
    tagged.checkpoint = {"dir": "/tmp/ck", "interval_subframes": 250}
    # Checkpointing never changes what a job computes: fingerprints
    # (and thus cache keys) must be identical with and without it.
    assert tagged.fingerprint() == plain.fingerprint()
    assert "checkpoint" not in plain.to_dict()

    wire = job_to_wire(tagged)
    assert wire["checkpoint"] == tagged.checkpoint
    rebuilt = job_from_wire(json.loads(json.dumps(wire)))
    assert rebuilt.checkpoint == tagged.checkpoint
    assert rebuilt.fingerprint() == plain.fingerprint()

    wire_plain = job_to_wire(plain)
    assert "checkpoint" not in wire_plain
    assert not hasattr(job_from_wire(wire_plain), "checkpoint")


def test_runner_attaches_checkpoints_and_counts_quarantines(tmp_path):
    job = _tiny_job()
    fingerprint = job.fingerprint()
    ckroot = tmp_path / "checkpoints"
    # Pre-seed the job's snapshot directory with garbage: the restore
    # must quarantine it, run from scratch and report the count.
    jobdir = ckroot / fingerprint
    jobdir.mkdir(parents=True)
    snapshot_path(jobdir, 50).write_bytes(b"not a snapshot")

    runner = ParallelRunner(jobs=1, checkpoint_dir=str(ckroot),
                            checkpoint_every=40, handle_signals=False)
    results = runner.run([job])
    assert job.checkpoint == {"dir": str(jobdir),
                              "interval_subframes": 40}
    assert results[0]["scheme"] == "reno"
    assert runner.stats.checkpoints_quarantined == 1
    assert "1 snapshots quarantined" in runner.stats.format()
    # The run itself snapshotted on cadence into the same directory.
    assert sorted(jobdir.glob(f"*{SNAPSHOT_SUFFIX}"))


def test_runner_skips_checkpoint_for_non_flow_jobs(tmp_path):
    from repro.exec import ProbeJob
    probe = ProbeJob(params={"sleep_s": 0.0})
    runner = ParallelRunner(jobs=1, checkpoint_dir=str(tmp_path),
                            handle_signals=False)
    runner.run([probe])
    assert not hasattr(probe, "checkpoint")


def test_wall_budget_throttles_boundary_saves(tmp_path):
    manager = CheckpointManager(CheckpointConfig(
        directory=str(tmp_path), wall_budget=0.05))
    # First eligible boundary always saves (no cost estimate yet).
    assert manager._should_save()
    # An expensive save just finished: the boundary right after it must
    # be skipped until ~19x its cost has elapsed.
    import time as _time
    manager._save_cost = 3600.0
    manager._last_save_end = _time.monotonic()
    assert not manager._should_save()
    # A long-amortized save is allowed again.
    manager._last_save_end = _time.monotonic() - 20.0 * 3600.0
    assert manager._should_save()
    # Disabling the budget saves at every boundary.
    unthrottled = CheckpointManager(CheckpointConfig(
        directory=str(tmp_path), wall_budget=None))
    unthrottled._save_cost = 3600.0
    unthrottled._last_save_end = _time.monotonic()
    assert unthrottled._should_save()


def test_wall_budget_rides_the_wire_only_when_non_default(tmp_path):
    from repro.harness.checkpoint import DEFAULT_WALL_BUDGET
    default = CheckpointConfig(directory=str(tmp_path))
    assert "wall_budget" not in default.to_dict()
    assert (CheckpointConfig.from_dict(default.to_dict()).wall_budget
            == DEFAULT_WALL_BUDGET)
    custom = CheckpointConfig(directory=str(tmp_path), wall_budget=None)
    assert custom.to_dict()["wall_budget"] is None
    assert CheckpointConfig.from_dict(custom.to_dict()).wall_budget is None


def test_chaos_kill_subframe_is_deterministic_and_in_range():
    spec = ChaosSpec(seed=9, kill_mid_job_prob=1.0)
    fingerprint = "ab" * 32
    first = spec.kill_subframe(fingerprint, 400)
    assert first == spec.kill_subframe(fingerprint, 400)
    assert 1 <= first <= 399
    assert spec.kill_subframe(fingerprint, 2) == 1
    # Different seeds move the kill point (with overwhelming odds).
    others = {ChaosSpec(seed=s, kill_mid_job_prob=1.0)
              .kill_subframe(fingerprint, 400) for s in range(8)}
    assert len(others) > 1


def test_kill_mid_job_is_a_known_chaos_fault():
    from repro.exec.chaos import FAULT_PROBS
    assert FAULT_PROBS["kill_mid_job"] == "kill_mid_job_prob"
    spec = ChaosSpec(kill_mid_job_prob=0.5)
    assert spec.active
    assert ChaosSpec.from_dict(spec.to_dict()) == spec
