"""Stateful property test of the HARQ reordering buffer.

A random interleaving of inserts, duplicates and abandons must always
deliver exactly the non-abandoned payloads, in order, never twice.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.phy.harq import ReorderingBuffer


class ReorderMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.buffer = ReorderingBuffer()
        self.next_seq = 0
        self.inserted: set[int] = set()
        self.abandoned: set[int] = set()
        self.delivered: list[int] = []

    @rule(ahead=st.integers(min_value=0, max_value=6))
    def insert_future(self, ahead):
        """Insert a block at or ahead of the frontier (HARQ can only
        delay blocks, never invent sequence numbers out of range)."""
        candidates = [s for s in range(self.next_seq + ahead + 1)
                      if s not in self.inserted
                      and s not in self.abandoned]
        if not candidates:
            seq = self.next_seq
            self.next_seq += 1
        else:
            seq = candidates[-1]
            self.next_seq = max(self.next_seq, seq + 1)
        self.inserted.add(seq)
        self.delivered.extend(self.buffer.insert(seq, seq))

    @rule()
    def duplicate_insert(self):
        if not self.inserted:
            return
        seq = max(self.inserted)
        out = self.buffer.insert(seq, seq)
        assert out == [] or seq not in out[:-1]  # never re-delivered
        self.delivered.extend(
            [] if seq in self.delivered else out)

    @rule(ahead=st.integers(min_value=0, max_value=6))
    def abandon(self, ahead):
        candidates = [s for s in range(self.next_seq + ahead + 1)
                      if s not in self.inserted
                      and s not in self.abandoned]
        if not candidates:
            return
        seq = candidates[0]
        self.abandoned.add(seq)
        self.next_seq = max(self.next_seq, seq + 1)
        self.delivered.extend(self.buffer.abandon(seq))

    @invariant()
    def delivered_in_order_no_dupes(self):
        assert self.delivered == sorted(set(self.delivered))

    @invariant()
    def delivered_only_inserted(self):
        assert set(self.delivered) <= self.inserted

    @invariant()
    def frontier_consistent(self):
        # Everything below the frontier was either delivered or
        # abandoned.
        frontier = self.buffer.expected_seq
        for seq in range(frontier):
            assert seq in self.inserted or seq in self.abandoned
        covered = set(self.delivered) | self.abandoned
        assert set(range(frontier)) <= covered | {
            s for s in self.inserted if s in self.abandoned}


TestReorderMachine = ReorderMachine.TestCase
TestReorderMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None)
