"""Tests for the fused multi-cell PBE monitor."""

import pytest

from repro.monitor.pbe import SECONDARY_INACTIVE_TIMEOUT, PbeMonitor
from repro.phy.dci import DciMessage, SubframeRecord

OWN = 100


def _monitor(cells={0: 100, 1: 50}, primary=0, rate=1000, ber=1e-6):
    return PbeMonitor(OWN, dict(cells), primary_cell=primary,
                      own_rate_hint=lambda: (rate, ber))


def _feed(monitor, subframe, per_cell):
    """per_cell: {cell_id: [(rnti, prbs, bpp), ...]}"""
    for cell_id, allocations in per_cell.items():
        rec = SubframeRecord(subframe, cell_id,
                             monitor.estimators[cell_id].total_prbs)
        for rnti, prbs, bpp in allocations:
            rec.messages.append(DciMessage(subframe, cell_id, rnti, prbs,
                                           12, 2, tbs_bits=prbs * bpp))
        monitor.decoder_callback(cell_id)(rec)


def test_requires_primary_configured():
    with pytest.raises(ValueError):
        PbeMonitor(OWN, {1: 50}, primary_cell=0,
                   own_rate_hint=lambda: (1000, 1e-6))


def test_primary_only_until_secondary_grant():
    m = _monitor()
    for sf in range(10):
        _feed(m, sf, {0: [(OWN, 50, 1000)], 1: []})
    assert m.active_cells() == [0]


def test_secondary_joins_after_grant_and_ages_out():
    m = _monitor()
    for sf in range(5):
        _feed(m, sf, {0: [(OWN, 50, 1000)], 1: [(OWN, 20, 1000)]})
    assert set(m.active_cells()) == {0, 1}
    # No grants on cell 1 for longer than the timeout -> aged out.
    for sf in range(5, 10 + SECONDARY_INACTIVE_TIMEOUT):
        _feed(m, sf, {0: [(OWN, 50, 1000)], 1: []})
    assert m.active_cells() == [0]


def test_activation_event_flag_is_one_shot():
    m = _monitor()
    _feed(m, 0, {0: [(OWN, 50, 1000)], 1: []})
    m.report(10)  # consume any initial flag
    for sf in range(1, 4):
        _feed(m, sf, {0: [(OWN, 50, 1000)], 1: [(OWN, 10, 1000)]})
    report = m.report(10)
    assert report.carrier_activated
    assert not m.report(10).carrier_activated  # consumed


def test_capacity_sums_active_cells():
    m = _monitor()
    for sf in range(40):
        _feed(m, sf, {0: [(OWN, 100, 1000)], 1: [(OWN, 50, 1000)]})
    report = m.report(40)
    assert report.physical_capacity == pytest.approx(150_000, rel=0.01)
    assert report.transport_capacity < report.physical_capacity
    assert set(report.users_per_cell) == {0, 1}
    # bits/subframe -> bits/s is a factor 1000.
    assert report.transport_capacity_bps == pytest.approx(
        report.transport_capacity * 1000)


def test_transport_below_physical_and_fair_consistent():
    m = _monitor()
    for sf in range(40):
        _feed(m, sf, {0: [(OWN, 60, 1000), (7, 40, 800)], 1: []})
    report = m.report(40)
    assert report.transport_fair_share <= report.fair_share
    assert report.fair_share == pytest.approx(1000 * 100 / 2)


def test_report_before_any_data():
    m = _monitor()
    report = m.report(40)
    assert report.physical_capacity == 0.0
    assert report.active_cells == [0]


def test_monitor_flush_drains_decode_latency_buffers():
    m = PbeMonitor(OWN, {0: 100}, primary_cell=0,
                   own_rate_hint=lambda: (1000, 1e-6),
                   decode_latency_subframes=3)
    for sf in range(10):
        _feed(m, sf, {0: [(OWN, 100, 1000)]})
    assert m.last_subframe < 9  # tail still buffered in the decoder
    m.flush()
    assert m.last_subframe == 9


def test_report_staleness_and_confidence_decay():
    m = _monitor(cells={0: 100})
    for sf in range(40):
        _feed(m, sf, {0: [(OWN, 100, 1000)]})
    fresh = m.report(40, now_subframe=40)
    assert fresh.staleness_subframes == 1
    assert fresh.confidence > 0.9
    assert not fresh.is_stale
    # The decoder goes dark; the UE's subframe clock keeps running.
    stale = m.report(40, now_subframe=200)
    assert stale.staleness_subframes == 161
    assert stale.confidence == 0.0
    assert stale.is_stale
    # Without a caller clock the report cannot know it is stale.
    assert m.report(40).staleness_subframes == 0


def test_report_low_window_coverage_flags_stale():
    m = _monitor(cells={0: 100})
    _feed(m, 0, {0: [(OWN, 100, 1000)]})
    # One sample in a 40-subframe window after a long gap: the window
    # is mostly holes even though the last snapshot is recent.
    _feed(m, 200, {0: [(OWN, 100, 1000)]})
    report = m.report(40, now_subframe=201)
    assert report.confidence < 0.25
    assert report.is_stale


def test_monitor_counts_decode_gaps():
    m = _monitor(cells={0: 100})
    for sf in range(10):
        _feed(m, sf, {0: [(OWN, 100, 1000)]})
    assert m.gap_events == 0
    for sf in range(30, 35):  # 20-subframe hole
        _feed(m, sf, {0: [(OWN, 100, 1000)]})
    for sf in range(50, 52):  # second hole
        _feed(m, sf, {0: [(OWN, 100, 1000)]})
    assert m.gap_events == 2
    assert m.missed_subframes == 20 + 15
