"""Tests for the experiment runner and scheme registry."""

import pytest

from repro.baselines import Bbr, Cubic, FixedRate
from repro.core.sender import PbeSender
from repro.harness import Experiment, FlowSpec, Scenario, make_cc
from repro.harness.runner import SCHEMES
from repro.phy.carrier import CarrierConfig


def _cheap_scenario(**kw):
    defaults = dict(
        name="cheap",
        carriers=[CarrierConfig(0, 10.0), CarrierConfig(1, 5.0)],
        aggregated_cells=1, mean_sinr_db=14.0, fading_std_db=0.5,
        busy=False, duration_s=2.0, seed=42)
    defaults.update(kw)
    return Scenario(**defaults)


def test_registry_covers_papers_eight_schemes():
    for scheme in ("pbe", "bbr", "cubic", "verus", "sprout", "copa",
                   "pcc", "vivace"):
        assert scheme in SCHEMES


def test_make_cc_types():
    assert isinstance(make_cc("pbe"), PbeSender)
    assert isinstance(make_cc("bbr"), Bbr)
    assert isinstance(make_cc("cubic"), Cubic)
    assert isinstance(make_cc("cbr", rate_bps=5e6), FixedRate)


def test_make_cc_unknown_scheme():
    with pytest.raises(ValueError, match="unknown scheme"):
        make_cc("quic-magic")


def test_single_flow_runs_and_summarizes():
    result_list = Experiment(_cheap_scenario())
    handle = result_list.add_flow(FlowSpec(scheme="bbr"))
    results = result_list.run()
    assert len(results) == 1
    r = results[0]
    assert r.summary.average_throughput_mbps > 5.0
    assert r.summary.average_delay_ms > 0
    assert r.sent_packets > 0


def test_pbe_flow_reports_state_fractions_and_monitor():
    exp = Experiment(_cheap_scenario())
    handle = exp.add_flow(FlowSpec(scheme="pbe"))
    assert handle.monitor is not None
    results = exp.run()
    fractions = results[0].state_fractions
    assert fractions is not None
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_non_pbe_flow_has_no_monitor():
    exp = Experiment(_cheap_scenario())
    handle = exp.add_flow(FlowSpec(scheme="cubic"))
    assert handle.monitor is None


def test_flow_start_and_duration_respected():
    exp = Experiment(_cheap_scenario(duration_s=2.0))
    handle = exp.add_flow(FlowSpec(scheme="bbr", start_s=0.5,
                                   duration_s=0.5))
    results = exp.run()
    stats = results[0].stats
    assert stats.first_arrival_us >= 500_000
    # Nothing delivered long after the stop (inflight drains briefly).
    assert stats.last_arrival_us < 1_300_000


def test_two_flows_same_cell():
    exp = Experiment(_cheap_scenario())
    exp.add_flow(FlowSpec(scheme="pbe", rnti=100))
    exp.add_flow(FlowSpec(scheme="pbe", rnti=101))
    results = exp.run()
    tputs = [r.summary.average_throughput_bps for r in results]
    assert all(t > 1e6 for t in tputs)


def test_cc_kwargs_passthrough():
    exp = Experiment(_cheap_scenario())
    handle = exp.add_flow(FlowSpec(scheme="cbr",
                                   cc_kwargs={"rate_bps": 3e6}))
    results = exp.run()
    assert results[0].summary.average_throughput_mbps == pytest.approx(
        3.0, rel=0.1)


def test_allocation_logging():
    exp = Experiment(_cheap_scenario())
    exp.add_flow(FlowSpec(scheme="bbr", log_allocations=True))
    results = exp.run()
    allocations = results[0].allocations
    assert allocations
    subframe, cell_id, prbs = allocations[0]
    assert cell_id == 0 and prbs > 0


def test_background_users_consume_capacity():
    # Average over several seeds: individual on-off users may happen to
    # be silent for a whole short run.
    def mean_tput(background):
        total = 0.0
        for seed in (7, 8, 9):
            exp = Experiment(_cheap_scenario(
                seed=seed, background_users=background))
            exp.add_flow(FlowSpec(scheme="bbr"))
            total += exp.run()[0].summary.average_throughput_bps
        return total / 3

    assert mean_tput(4) < mean_tput(0)
