"""Unit tests for CUBIC and Reno."""

import pytest

from repro.baselines.base import AckContext
from repro.baselines.cubic import CUBIC_BETA, INITIAL_CWND, Cubic, Reno
from repro.net.packet import Packet


def _ack(now_us, rtt_us=40_000):
    return AckContext(ack=Packet(1, 0, is_ack=True), now_us=now_us,
                      rtt_us=rtt_us, delivery_rate_bps=10e6,
                      newly_acked_bits=12_000, inflight_bits=120_000,
                      app_limited=False)


class TestCubic:
    def test_slow_start_doubles_per_rtt(self):
        cc = Cubic()
        start = cc.cwnd
        for i in range(10):
            cc.on_ack(_ack(i * 1_000))
        assert cc.cwnd == start + 10

    def test_loss_multiplies_down(self):
        cc = Cubic()
        cc.cwnd = 100.0
        cc.on_loss(1_000_000, 12_000, 0)
        assert cc.cwnd == pytest.approx(100 * CUBIC_BETA)
        assert cc.ssthresh == cc.cwnd

    def test_one_reduction_per_rtt(self):
        cc = Cubic()
        cc.cwnd = 100.0
        cc.on_loss(1_000_000, 12_000, 0)
        after_first = cc.cwnd
        cc.on_loss(1_010_000, 12_000, 0)  # same RTT: ignored
        assert cc.cwnd == after_first

    def test_cubic_growth_accelerates_past_wmax(self):
        # Large RTT keeps the TCP-friendly estimate out of the way, so
        # the cubic curve itself governs: slow near the plateau (t ≈ K),
        # accelerating beyond it.
        cc = Cubic()
        cc.cwnd = 100.0
        cc.on_loss(0, 12_000, 0)
        t, growth = 0, []
        for window in range(8):
            before = cc.cwnd
            for _ in range(200):
                t += 5_000
                cc.on_ack(_ack(t, rtt_us=400_000))
            growth.append(cc.cwnd - before)
        # Concave-then-convex: the slowest growth is at the plateau in
        # the middle, not at either end.
        plateau = growth.index(min(growth))
        assert 0 < plateau < len(growth) - 1
        assert growth[-1] > min(growth)
        assert cc.cwnd > 100.0  # eventually exceeds the old Wmax

    def test_timeout_resets(self):
        cc = Cubic()
        cc.cwnd = 80.0
        cc.on_timeout(0)
        assert cc.cwnd == INITIAL_CWND
        assert cc.ssthresh == 40.0

    def test_outputs(self):
        cc = Cubic()
        assert cc.cwnd_bits(0) == INITIAL_CWND * cc.mss_bits
        assert cc.pacing_rate_bps(0) > 0


class TestReno:
    def test_slow_start_then_linear(self):
        cc = Reno()
        cc.ssthresh = 12.0
        for i in range(4):
            cc.on_ack(_ack(i * 1_000))
        # 10 -> 11 -> 12 (slow start), then two congestion-avoidance
        # increments of 1/cwnd each.
        expected = 12 + 1 / 12
        expected += 1 / expected
        assert cc.cwnd == pytest.approx(expected)

    def test_halves_on_loss(self):
        cc = Reno()
        cc.cwnd = 64.0
        cc.on_loss(1_000_000, 12_000, 0)
        assert cc.cwnd == 32.0

    def test_floor_of_two(self):
        cc = Reno()
        cc.cwnd = 2.0
        cc.on_loss(1_000_000, 12_000, 0)
        assert cc.cwnd == 2.0

    def test_timeout(self):
        cc = Reno()
        cc.cwnd = 64.0
        cc.on_timeout(0)
        assert cc.cwnd == 2.0
        assert cc.ssthresh == 32.0
