"""Reproducibility: identical seeds give identical runs."""

from repro.harness import Experiment, FlowSpec, Scenario
from repro.phy.carrier import CarrierConfig


def _run(seed, scheme="pbe"):
    scenario = Scenario(
        name="det", carriers=[CarrierConfig(0, 10.0)],
        aggregated_cells=1, mean_sinr_db=12.0, fading_std_db=1.0,
        busy=True, background_users=2, duration_s=1.5, seed=seed)
    experiment = Experiment(scenario)
    experiment.add_flow(FlowSpec(scheme=scheme))
    result = experiment.run()[0]
    return (result.summary.average_throughput_bps,
            tuple(result.stats.arrival_us[:50]),
            tuple(result.stats.delay_us[:50]),
            result.sent_packets)


def test_same_seed_same_run():
    assert _run(11) == _run(11)


def test_different_seed_different_run():
    assert _run(11) != _run(12)


def test_determinism_holds_for_learning_schemes():
    assert _run(11, scheme="vivace") == _run(11, scheme="vivace")
    assert _run(11, scheme="pcc") == _run(11, scheme="pcc")
