"""Tests for DCI messages and subframe records."""

import pytest

from repro.phy.dci import DciMessage, SubframeRecord


def _msg(rnti, prbs, subframe=0, cell=0, **kw):
    return DciMessage(subframe, cell, rnti, prbs, mcs=10,
                      spatial_streams=1, tbs_bits=prbs * 500, **kw)


def test_message_validation():
    with pytest.raises(ValueError):
        _msg(1, -1)
    with pytest.raises(ValueError):
        DciMessage(0, 0, 1, 4, 10, 1, tbs_bits=-5)


def test_idle_prbs_accounting():
    rec = SubframeRecord(0, 0, total_prbs=100)
    rec.messages.append(_msg(1, 30))
    rec.messages.append(_msg(2, 50))
    assert rec.allocated_prbs == 80
    assert rec.idle_prbs == 20


def test_over_allocation_raises():
    rec = SubframeRecord(0, 0, total_prbs=10)
    rec.messages.append(_msg(1, 20))
    with pytest.raises(ValueError, match="over-allocated"):
        rec.idle_prbs


def test_prbs_for_sums_per_user():
    rec = SubframeRecord(0, 0, total_prbs=100)
    rec.messages.append(_msg(1, 10))
    rec.messages.append(_msg(1, 5, new_data=False))  # its retransmission
    rec.messages.append(_msg(2, 7))
    assert rec.prbs_for(1) == 15
    assert rec.prbs_for(2) == 7
    assert rec.prbs_for(99) == 0


def test_active_rntis():
    rec = SubframeRecord(0, 0, total_prbs=100)
    rec.messages.append(_msg(1, 10))
    rec.messages.append(_msg(2, 0))
    assert rec.active_rntis() == {1}


def test_messages_are_immutable():
    msg = _msg(1, 10)
    with pytest.raises(AttributeError):
        msg.n_prbs = 99
