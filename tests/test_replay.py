"""Tests for capacity-trace recording and Mahimahi-style replay."""

import pytest

from repro.baselines import AckingReceiver, Bbr, Sender
from repro.net.link import DelayPipe
from repro.net.sim import Simulator
from repro.net.units import MSS_BITS
from repro.phy.dci import DciMessage, SubframeRecord
from repro.traces.replay import CapacityTrace, TraceLink


def _records(bits_series, rnti=1):
    out = []
    for sf, bits in enumerate(bits_series):
        rec = SubframeRecord(sf, 0, 100)
        if bits:
            rec.messages.append(DciMessage(sf, 0, rnti, 10, 12, 2,
                                           tbs_bits=bits))
        out.append(rec)
    return out


class TestCapacityTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityTrace([])
        with pytest.raises(ValueError):
            CapacityTrace([1_000, -1])

    def test_mean_and_budget_looping(self):
        trace = CapacityTrace([12_000, 24_000])
        assert trace.mean_bps == 18e6
        assert trace.budget(0) == 12_000
        assert trace.budget(3) == 24_000  # loops

    def test_from_served_records_per_user(self):
        records = _records([10_000, 0, 20_000])
        trace = CapacityTrace.from_served_records(records, rnti=1)
        assert trace.bits_per_ms == [10_000, 0, 20_000]

    def test_from_served_records_whole_cell(self):
        records = _records([10_000, 5_000])
        records[0].messages.append(DciMessage(0, 0, 2, 5, 12, 2,
                                              tbs_bits=7_000))
        trace = CapacityTrace.from_served_records(records)
        assert trace.bits_per_ms[0] == 17_000

    def test_from_empty_records(self):
        with pytest.raises(ValueError):
            CapacityTrace.from_served_records([])

    def test_mahimahi_roundtrip(self):
        # 24 kbit/ms = two 1500-byte packets per millisecond.
        trace = CapacityTrace([24_000] * 5)
        lines = trace.to_mahimahi_lines()
        assert lines[:4] == ["1", "1", "2", "2"]
        again = CapacityTrace.from_mahimahi_lines(lines)
        assert again.bits_per_ms == trace.bits_per_ms

    def test_mahimahi_carry_semantics(self):
        # 18 kbit/ms: 1.5 packets per ms -> 1, 2, 1, 2 ... deliveries.
        trace = CapacityTrace([18_000] * 4)
        lines = trace.to_mahimahi_lines()
        counts = {t: lines.count(str(t)) for t in (1, 2, 3, 4)}
        assert counts == {1: 1, 2: 2, 3: 1, 4: 2}

    def test_mahimahi_parse_validation(self):
        with pytest.raises(ValueError):
            CapacityTrace.from_mahimahi_lines(["# comment only"])
        with pytest.raises(ValueError):
            CapacityTrace.from_mahimahi_lines(["0"])

    def test_save_and_load(self, tmp_path):
        trace = CapacityTrace([12_000, 36_000, 0, 12_000])
        path = tmp_path / "cell.trace"
        trace.save(path)
        again = CapacityTrace.load(path)
        # The file format quantizes to whole 1500-byte deliveries; this
        # trace is already packet-aligned, so it survives exactly
        # (trailing zero-capacity milliseconds are not representable).
        assert again.bits_per_ms == [12_000, 36_000, 0, 12_000]


class TestTraceLink:
    def _loop(self, sim, trace, delay_us=5_000):
        sender_holder = {}
        link = TraceLink(sim, None, trace, delay_us=delay_us)
        cc = Bbr()
        sender = Sender(sim, 1, cc, egress=link)
        ack_pipe = DelayPipe(sim, sender, delay_us)
        receiver = AckingReceiver(sim, 1, ack_pipe)
        link.sink = receiver
        link.start()
        return sender, receiver, link

    def test_throughput_matches_trace_mean(self):
        sim = Simulator()
        trace = CapacityTrace([24_000] * 100)  # 24 Mbit/s
        sender, receiver, _ = self._loop(sim, trace)
        sender.start()
        sim.run(until_us=4_000_000)
        tput = receiver.stats.average_throughput_bps()
        assert tput == pytest.approx(24e6, rel=0.1)

    def test_variable_trace_respected(self):
        sim = Simulator()
        # 1 s at 36 Mbit/s, 1 s at 6 Mbit/s, looping.
        trace = CapacityTrace([36_000] * 1_000 + [6_000] * 1_000)
        sender, receiver, _ = self._loop(sim, trace)
        sender.start()
        sim.run(until_us=4_000_000)
        import numpy as np
        arrivals = np.asarray(receiver.stats.arrival_us)
        sizes = np.asarray(receiver.stats.size_bits)
        fast = sizes[(arrivals % 2_000_000) < 1_000_000].sum() / 2
        slow = sizes[(arrivals % 2_000_000) >= 1_000_000].sum() / 2
        assert fast > 3 * slow

    def test_droptail(self):
        sim = Simulator()
        trace = CapacityTrace([1_200])  # 1.2 Mbit/s
        link = TraceLink(sim, AckingReceiver(sim, 1, DelayPipe(
            sim, None, 1)), trace, queue_packets=5)
        link.sink = type("Sink", (), {"receive": lambda s, p: None})()
        link.start()
        from repro.net.packet import Packet
        for seq in range(50):
            link.receive(Packet(1, seq))
        sim.run(until_us=10_000)
        assert link.dropped > 0

    def test_validation(self):
        sim = Simulator()
        trace = CapacityTrace([1])
        with pytest.raises(ValueError):
            TraceLink(sim, None, trace, queue_packets=0)
        link = TraceLink(sim, None, trace)
        link.start()
        with pytest.raises(RuntimeError):
            link.start()

    def test_record_then_replay_preserves_behaviour(self):
        """Record a saturated cell run, replay it trace-driven: the
        replayed flow sees roughly the recorded capacity."""
        from repro.harness import Experiment, FlowSpec, Scenario
        from repro.phy.carrier import CarrierConfig
        scenario = Scenario(name="rec",
                            carriers=[CarrierConfig(0, 10.0)],
                            aggregated_cells=1, mean_sinr_db=15.0,
                            duration_s=2.0, seed=30)
        exp = Experiment(scenario)
        exp.add_flow(FlowSpec(scheme="cubic"))  # keeps the cell full
        records = []
        exp.network.attach_monitor(0, records.append)
        exp.run()
        trace = CapacityTrace.from_served_records(records[500:], rnti=100)

        sim = Simulator()
        sender, receiver, _ = self._loop(sim, trace)
        sender.start()
        sim.run(until_us=3_000_000)
        replay_tput = receiver.stats.average_throughput_bps()
        assert replay_tput == pytest.approx(trace.mean_bps, rel=0.25)
