"""Tests for the uplink ACK-batching pipe."""

import pytest
from hypothesis import given, strategies as st

from repro.net.link import BatchingPipe, PacketSink
from repro.net.packet import Packet
from repro.net.sim import Simulator


def _packet(seq):
    return Packet(flow_id=1, seq=seq, size_bits=360)


def test_single_packet_waits_for_grant_boundary():
    sim = Simulator()
    sink = PacketSink(sim)
    pipe = BatchingPipe(sim, sink, delay_us=10_000,
                        batch_interval_us=5_000)
    sim.schedule(1_200, pipe.receive, _packet(0))
    sim.run()
    # Held until the 5 ms boundary, then 10 ms propagation.
    assert sink.packets[0].recv_time_us == 5_000 + 10_000


def test_packets_in_same_interval_released_together():
    sim = Simulator()
    sink = PacketSink(sim)
    pipe = BatchingPipe(sim, sink, delay_us=0, batch_interval_us=5_000)
    for t, seq in ((100, 0), (2_000, 1), (4_900, 2)):
        sim.schedule(t, pipe.receive, _packet(seq))
    sim.run()
    assert [p.recv_time_us for p in sink.packets] == [5_000] * 3
    assert pipe.batches == 1


def test_packet_on_grant_boundary_rides_it():
    # Arriving exactly on a boundary must not hold the packet a full
    # extra cycle (the pre-fix behaviour computed wait = interval).
    sim = Simulator()
    sink = PacketSink(sim)
    pipe = BatchingPipe(sim, sink, delay_us=0, batch_interval_us=5_000)
    sim.schedule(5_000, pipe.receive, _packet(0))
    sim.run()
    assert [p.recv_time_us for p in sink.packets] == [5_000]
    assert pipe.batches == 1


def test_later_packet_takes_next_batch():
    sim = Simulator()
    sink = PacketSink(sim)
    pipe = BatchingPipe(sim, sink, delay_us=0, batch_interval_us=5_000)
    sim.schedule(100, pipe.receive, _packet(0))
    sim.schedule(6_000, pipe.receive, _packet(1))
    sim.run()
    assert [p.recv_time_us for p in sink.packets] == [5_000, 10_000]
    assert pipe.batches == 2


def test_order_preserved_within_batch():
    sim = Simulator()
    sink = PacketSink(sim)
    pipe = BatchingPipe(sim, sink, delay_us=0, batch_interval_us=5_000)
    for seq in range(5):
        sim.schedule(100 + seq, pipe.receive, _packet(seq))
    sim.run()
    assert [p.seq for p in sink.packets] == list(range(5))


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        BatchingPipe(sim, PacketSink(), delay_us=-1)
    with pytest.raises(ValueError):
        BatchingPipe(sim, PacketSink(), delay_us=0, batch_interval_us=0)


@given(st.lists(st.integers(min_value=0, max_value=50_000), min_size=1,
                max_size=30))
def test_every_packet_arrives_with_bounded_extra_delay(send_times):
    sim = Simulator()
    sink = PacketSink(sim)
    pipe = BatchingPipe(sim, sink, delay_us=7_000,
                        batch_interval_us=5_000)
    for i, t in enumerate(sorted(send_times)):
        packet = _packet(i)
        packet.sent_time_us = t
        sim.schedule(t, pipe.receive, packet)
    sim.run()
    assert len(sink.packets) == len(send_times)
    for packet in sink.packets:
        extra = packet.recv_time_us - packet.sent_time_us - 7_000
        # Strictly less than one grant period: a boundary arrival
        # rides its own boundary (extra = 0), never the next one.
        assert 0 <= extra < 5_000


def _ack(seq, flow_id=1):
    data = Packet(flow_id=flow_id, seq=seq, size_bits=12_000,
                  sent_time_us=0)
    return data.make_ack(now_us=0)


def test_batched_mode_delivers_one_event_per_flush():
    sim = Simulator()
    sink = PacketSink(sim)
    pipe = BatchingPipe(sim, sink, delay_us=1_000,
                        batch_interval_us=5_000, batched=True)
    for t, seq in ((100, 0), (2_000, 1), (4_900, 2)):
        sim.schedule(t, pipe.receive, _ack(seq))
    sim.run()
    # PacketSink has no receive_batch: the AckBatch falls back to a
    # per-packet loop, so delivery content matches scalar exactly.
    assert [p.seq for p in sink.packets] == [0, 1, 2]
    assert [p.recv_time_us for p in sink.packets] == [6_000] * 3
    assert pipe.forwarded == 3 and pipe.batches == 1


def test_batched_mode_single_packet_stays_scalar():
    sim = Simulator()
    sink = PacketSink(sim)
    pipe = BatchingPipe(sim, sink, delay_us=0,
                        batch_interval_us=5_000, batched=True)
    sim.schedule(100, pipe.receive, _ack(0))
    sim.run()
    assert [p.seq for p in sink.packets] == [0]
    assert pipe.forwarded == 1
