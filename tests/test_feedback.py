"""Tests for the PBE-CC ACK feedback encoding (§5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.feedback import (
    PbeFeedback,
    decode_clamp_count,
    decode_rate_bps,
    encode_interval_us,
    reset_decode_clamp_count,
)


def test_known_rate_roundtrip():
    # 12 Mbit/s -> one 1500-byte packet per millisecond.
    assert encode_interval_us(12e6) == 1_000
    assert decode_rate_bps(1_000) == pytest.approx(12e6)


def test_zero_rate_saturates():
    interval = encode_interval_us(0.0)
    assert interval == 2**32 - 1
    assert decode_rate_bps(interval) > 0  # minimum representable rate


def test_huge_rate_clamps_to_one_microsecond():
    assert encode_interval_us(1e15) == 1
    assert decode_rate_bps(1) == pytest.approx(12e9)


def test_decode_saturates_out_of_range():
    # Corrupted ACK fields clamp to the representable range instead of
    # raising, and each clamp is counted for telemetry.
    reset_decode_clamp_count()
    assert decode_rate_bps(0) == decode_rate_bps(1)
    assert decode_rate_bps(2**32) == decode_rate_bps(2**32 - 1)
    assert decode_rate_bps(-17) == decode_rate_bps(1)
    assert decode_clamp_count() == 3
    # In-range decodes never touch the counter.
    decode_rate_bps(1_000)
    assert decode_clamp_count() == 3
    reset_decode_clamp_count()
    assert decode_clamp_count() == 0


@given(st.floats(min_value=1e4, max_value=1.2e8))
def test_quantization_error_below_one_percent(rate):
    # Up to 120 Mbit/s the interval is >= 100 µs, so rounding costs <1%.
    decoded = decode_rate_bps(encode_interval_us(rate))
    assert abs(decoded - rate) / rate < 0.01


@given(st.floats(min_value=1.2e8, max_value=1.2e9))
def test_quantization_error_bounded_at_gigabit_rates(rate):
    decoded = decode_rate_bps(encode_interval_us(rate))
    assert abs(decoded - rate) / rate < 0.06


def test_feedback_from_rates():
    fb = PbeFeedback.from_rates(50e6, 80e6, internet_bottleneck=True,
                                carrier_activated=True)
    assert fb.target_rate_bps == pytest.approx(50e6, rel=0.01)
    assert fb.fair_rate_bps == pytest.approx(80e6, rel=0.01)
    assert fb.internet_bottleneck
    assert fb.carrier_activated


def test_feedback_stale_bit():
    assert not PbeFeedback.from_rates(1e6, 1e6, False).stale
    assert PbeFeedback.from_rates(1e6, 1e6, False, stale=True).stale


def test_feedback_is_immutable():
    fb = PbeFeedback.from_rates(1e6, 1e6, False)
    with pytest.raises(AttributeError):
        fb.internet_bottleneck = True
