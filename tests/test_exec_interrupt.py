"""Interrupt-safety end to end: SIGINT a real sweep subprocess.

Satellite regression for the supervised runner: a ``python -m repro
sweep`` process killed mid-run with SIGINT must leave a valid journal
and store behind, and a ``--resume`` run must recompute *only* the
unfinished jobs and converge to payloads byte-identical to an
uninterrupted run.

These tests drive the actual CLI in a subprocess (signal handling is
process-global state and cannot be faithfully tested in-process).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGINT") or os.name == "nt",
    reason="POSIX signal delivery required")


def sweep_cmd(cache_dir, extra=()):
    # 1 scheme x 2 busy x 2 idle = 4 jobs, inline (--jobs 1) so the
    # test exercises drain without process-pool startup variance
    return [sys.executable, "-m", "repro", "sweep",
            "--schemes", "bbr", "--busy", "2", "--idle", "2",
            "--duration", "2", "--jobs", "1",
            "--cache-dir", str(cache_dir), *extra]


def sweep_env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    return env


def store_entries(cache_dir):
    return sorted(p for p in Path(cache_dir).glob("??/*.json"))


def interrupt_sweep(cache_dir):
    """Start a sweep, SIGINT it after the first payload persists."""
    proc = subprocess.Popen(
        sweep_cmd(cache_dir), env=sweep_env(), cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    deadline = time.monotonic() + 240
    while (time.monotonic() < deadline and proc.poll() is None
           and len(store_entries(cache_dir)) < 1):
        time.sleep(0.02)
    if proc.poll() is not None:
        pytest.skip("sweep completed before SIGINT could land")
    proc.send_signal(signal.SIGINT)
    _, stderr = proc.communicate(timeout=240)
    return proc.returncode, stderr


def test_sigint_drains_then_resumes_byte_identically(tmp_path):
    cache = tmp_path / "cache"
    returncode, stderr = interrupt_sweep(cache)
    assert returncode == 130, stderr
    assert "interrupted" in stderr

    # journal is valid JSONL ending in an interrupted marker, and its
    # done-set matches exactly what persisted in the store
    journal = cache / "journal.jsonl"
    records = [json.loads(line)
               for line in journal.read_text().splitlines()]
    assert records[0]["kind"] == "sweep" and records[0]["total"] == 4
    assert records[-1] == {"kind": "end", "status": "interrupted"}
    done = {r["fingerprint"] for r in records
            if r.get("kind") == "job" and r.get("status") == "done"}
    persisted = store_entries(cache)
    assert {p.stem for p in persisted} == done
    assert 1 <= len(done) < 4
    snapshot = {p.stem: p.read_bytes() for p in persisted}

    # resume: finished jobs are cache hits (zero re-execution), only
    # the remainder executes
    resumed = subprocess.run(
        sweep_cmd(cache, extra=("--resume", "--save",
                                str(tmp_path / "resumed.json"))),
        env=sweep_env(), cwd=REPO_ROOT, capture_output=True,
        text=True, timeout=240)
    assert resumed.returncode == 0, resumed.stderr
    assert "re-attempting" in resumed.stderr or done  # replay reported
    events = [line for line in resumed.stderr.splitlines()
              if "[repro.exec]" in line]
    assert sum(" executed " in line for line in events) == 4 - len(done)
    assert sum(" cached " in line for line in events) == len(done)
    for fingerprint, blob in snapshot.items():
        path = cache / fingerprint[:2] / f"{fingerprint}.json"
        assert path.read_bytes() == blob, "resume rewrote a finished entry"

    # equivalence: resumed output == uninterrupted run, byte for byte
    fresh = subprocess.run(
        sweep_cmd(tmp_path / "fresh-cache",
                  extra=("--save", str(tmp_path / "fresh.json"))),
        env=sweep_env(), cwd=REPO_ROOT, capture_output=True,
        text=True, timeout=240)
    assert fresh.returncode == 0, fresh.stderr
    assert ((tmp_path / "resumed.json").read_bytes()
            == (tmp_path / "fresh.json").read_bytes())


def test_resume_flag_requires_cache_dir(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "sweep", "--schemes", "bbr",
         "--busy", "1", "--idle", "1", "--duration", "1", "--resume"],
        env=sweep_env(), cwd=REPO_ROOT, capture_output=True,
        text=True, timeout=120)
    assert proc.returncode != 0
    assert "--cache-dir" in proc.stderr
