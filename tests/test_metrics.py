"""Tests for the evaluation metrics (100 ms windows, percentiles, Jain)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.harness.metrics import (
    ORDER_STATS,
    jain_index,
    percentile,
    summarize_flow,
    windowed_throughput_bps,
)
from repro.net.flow import FlowStats


def _steady_stats(rate_bps=12e6, duration_s=1.0, delay_us=20_000):
    stats = FlowStats(1)
    gap = round(12_000 * 1e6 / rate_bps)
    t = 0
    while t < duration_s * 1e6:
        stats.record(t, 12_000, delay_us)
        t += gap
    return stats


def test_windowed_throughput_steady_flow():
    stats = _steady_stats(rate_bps=12e6)
    windows = windowed_throughput_bps(stats)
    assert len(windows) == 10
    assert np.allclose(windows, 12e6, rtol=0.02)


def test_windowed_throughput_empty():
    assert windowed_throughput_bps(FlowStats(1)).size == 0


def test_windowed_throughput_explicit_span():
    stats = _steady_stats()
    windows = windowed_throughput_bps(stats, start_us=500_000,
                                      end_us=1_000_000)
    assert len(windows) == 5


def test_windowed_throughput_validation():
    with pytest.raises(ValueError):
        windowed_throughput_bps(_steady_stats(), window_us=0)


def test_percentile_basics():
    values = list(range(101))
    assert percentile(values, 50) == 50
    assert percentile(values, 95) == 95
    assert percentile([], 50) == 0.0


def test_jain_perfect_fairness():
    assert jain_index([10.0, 10.0, 10.0]) == pytest.approx(1.0)


def test_jain_total_unfairness():
    # One user hogging everything among n users -> 1/n.
    assert jain_index([30.0, 0.0, 0.0]) == pytest.approx(1 / 3)


def test_jain_paper_range():
    # The paper reports 98.73% for three near-equal flows.
    assert jain_index([33.0, 34.0, 31.0]) > 0.98


def test_jain_empty_is_defined():
    # A cell with no test flows must still get a defined matrix entry.
    assert jain_index([]) == 1.0


def test_jain_all_zero_is_defined():
    # All-zero throughputs: nobody is disadvantaged, not a div-by-zero.
    assert jain_index([0.0, 0.0, 0.0]) == 1.0
    assert jain_index(np.zeros(5)) == 1.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=10))
def test_jain_bounds(values):
    index = jain_index(values)
    assert 0.0 <= index <= 1.0 + 1e-9


def test_summarize_flow_fields():
    stats = _steady_stats(rate_bps=24e6, delay_us=30_000)
    summary = summarize_flow(stats, scheme="test")
    assert summary.scheme == "test"
    assert summary.average_throughput_mbps == pytest.approx(24.0, rel=0.03)
    assert summary.average_delay_ms == pytest.approx(30.0)
    assert summary.median_delay_ms == pytest.approx(30.0)
    assert summary.p95_delay_ms == pytest.approx(30.0)
    assert set(summary.throughput_percentiles_bps) == set(ORDER_STATS)
    assert summary.packets == stats.packets


def test_summarize_empty_flow():
    summary = summarize_flow(FlowStats(1), scheme="none")
    assert summary.average_throughput_bps == 0.0
    assert summary.packets == 0


def test_summarize_skips_startup_transient():
    stats = FlowStats(1)
    # 0.5 s of slow high-delay startup, then 0.5 s of steady state.
    for t in range(0, 500_000, 10_000):
        stats.record(t, 12_000, 90_000)
    for t in range(500_000, 1_000_000, 1_000):
        stats.record(t, 12_000, 20_000)
    trimmed = summarize_flow(stats, skip_first_us=500_000)
    assert trimmed.average_delay_ms == pytest.approx(20.0)
    full = summarize_flow(stats)
    assert full.average_delay_ms > 20.0
