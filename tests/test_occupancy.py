"""Tests for the cell-occupancy analytics tool."""

import pytest

from repro.monitor.occupancy import OccupancyAnalyzer
from repro.phy.dci import DciMessage, SubframeRecord


def _record(subframe, allocations, cell=0, total=100):
    rec = SubframeRecord(subframe, cell, total)
    for rnti, prbs, new in allocations:
        rec.messages.append(DciMessage(subframe, cell, rnti, prbs, 12,
                                       2, tbs_bits=prbs * 1_000,
                                       new_data=new))
    return rec


def test_utilization_accounting():
    a = OccupancyAnalyzer(0)
    a.update(_record(0, [(1, 60, True)]))
    a.update(_record(1, [(1, 20, True), (2, 20, True)]))
    assert a.mean_utilization == pytest.approx(100 / 200)
    assert a.subframes == 2


def test_per_user_profiles():
    a = OccupancyAnalyzer(0)
    a.update(_record(0, [(1, 30, True)]))
    a.update(_record(1, []))
    a.update(_record(2, [(1, 10, False)]))
    user = a.users[1]
    assert user.subframes_active == 2
    assert user.total_prbs == 40
    assert user.mean_prbs == 20.0
    assert user.retransmissions == 1
    assert user.span_subframes == 3


def test_top_users_ordering():
    a = OccupancyAnalyzer(0)
    a.update(_record(0, [(1, 10, True), (2, 80, True), (3, 5, True)]))
    top = a.top_users(2)
    assert [u.rnti for u in top] == [2, 1]


def test_bucket_series():
    a = OccupancyAnalyzer(0, bucket_subframes=10)
    for sf in range(10):
        a.update(_record(sf, [(1, 50, True)]))
    for sf in range(10, 20):
        a.update(_record(sf, []))
    assert a.utilization_series == [0.5, 0.0]
    assert a.users_series == [1, 0]


def test_retransmission_fraction():
    a = OccupancyAnalyzer(0)
    a.update(_record(0, [(1, 10, True)]))
    a.update(_record(1, [(1, 10, False)]))
    assert a.retransmission_fraction() == 0.5


def test_summary_shape():
    a = OccupancyAnalyzer(0, bucket_subframes=5)
    for sf in range(7):
        a.update(_record(sf, [(1, 40, True)]))
    s = a.summary()
    assert s["cell_id"] == 0
    assert s["distinct_users"] == 1
    assert 0 < s["mean_utilization"] < 1
    assert s["peak_bucket_utilization"] == pytest.approx(0.4)


def test_wrong_cell_rejected():
    a = OccupancyAnalyzer(0)
    with pytest.raises(ValueError):
        a.update(_record(0, [], cell=5))
    with pytest.raises(ValueError):
        OccupancyAnalyzer(0, bucket_subframes=0)


def test_end_to_end_against_live_network():
    from repro.harness import Experiment, FlowSpec, Scenario
    from repro.phy.carrier import CarrierConfig
    scenario = Scenario(name="occ", carriers=[CarrierConfig(0, 10.0)],
                        aggregated_cells=1, mean_sinr_db=15.0,
                        busy=True, background_users=2,
                        duration_s=2.0, seed=12)
    exp = Experiment(scenario)
    exp.add_flow(FlowSpec(scheme="pbe"))
    analyzer = OccupancyAnalyzer(0, bucket_subframes=200)
    exp.network.attach_monitor(0, analyzer.update)
    exp.run()
    # A full-buffer PBE flow keeps the cell busy...
    assert analyzer.mean_utilization > 0.7
    # ...and is the heaviest user the analyzer sees.
    assert analyzer.top_users(1)[0].rnti == 100
    assert analyzer.summary()["distinct_users"] >= 2
