"""Shared Internet-bottleneck topology (§4.2.3 fairness claim)."""

import pytest

from repro.harness import Experiment, FlowSpec, Scenario, jain_index
from repro.net.link import FlowDemux, Link, PacketSink
from repro.net.packet import Packet
from repro.net.sim import Simulator
from repro.phy.carrier import CarrierConfig


def _scenario(**kw):
    defaults = dict(name="shared",
                    carriers=[CarrierConfig(0, 20.0)],
                    aggregated_cells=1, mean_sinr_db=18.0,
                    fading_std_db=0.5, duration_s=6.0, seed=17)
    defaults.update(kw)
    return Scenario(**defaults)


class TestFlowDemux:
    def test_routes_by_flow_id(self):
        a, b = PacketSink(), PacketSink()
        demux = FlowDemux({1: a})
        demux.add_route(2, b)
        demux.receive(Packet(1, 0))
        demux.receive(Packet(2, 0))
        demux.receive(Packet(99, 0))
        assert len(a.packets) == 1
        assert len(b.packets) == 1
        assert demux.unrouted == 1


def test_shared_link_requires_demux():
    exp = Experiment(_scenario())
    bogus = Link(exp.sim, PacketSink(), rate_bps=1e6, delay_us=0)
    with pytest.raises(ValueError, match="FlowDemux"):
        exp.add_flow(FlowSpec(scheme="bbr", shared_link=bogus))


def test_two_pbe_flows_share_wired_bottleneck_fairly():
    """Both flows detect the Internet bottleneck and split the 20
    Mbit/s wired link roughly evenly via the capped-BBR mode."""
    exp = Experiment(_scenario())
    shared = exp.make_shared_bottleneck(rate_bps=20e6, delay_us=18_000)
    exp.add_flow(FlowSpec(scheme="pbe", rnti=100, shared_link=shared))
    exp.add_flow(FlowSpec(scheme="pbe", rnti=101, shared_link=shared))
    results = exp.run()
    tputs = [r.summary.average_throughput_bps for r in results]
    total = sum(tputs)
    assert total == pytest.approx(20e6, rel=0.15)
    assert jain_index(tputs) > 0.85
    for r in results:
        assert r.state_fractions["internet"] > 0.5


def test_pbe_coexists_with_cubic_at_wired_bottleneck():
    """§4.3: PBE is 'strictly less aggressive than BBR' at a shared
    wired bottleneck — it must survive against CUBIC without
    collapsing, though CUBIC (loss-based over a deep buffer) wins."""
    exp = Experiment(_scenario(duration_s=8.0))
    shared = exp.make_shared_bottleneck(rate_bps=20e6, delay_us=18_000,
                                        queue_packets=200)
    exp.add_flow(FlowSpec(scheme="pbe", rnti=100, shared_link=shared))
    exp.add_flow(FlowSpec(scheme="cubic", rnti=101, shared_link=shared))
    results = exp.run()
    tputs = {r.spec.scheme: r.summary.average_throughput_bps
             for r in results}
    assert tputs["pbe"] > 2e6          # not starved
    assert tputs["pbe"] + tputs["cubic"] == pytest.approx(20e6,
                                                          rel=0.2)
