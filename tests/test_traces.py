"""Tests for mobility trajectories and diurnal cell-activity traces."""

import numpy as np
import pytest

from repro.traces.cellactivity import (
    DIURNAL_SHAPE,
    DiurnalCellActivity,
    paper_cells,
)
from repro.traces.mobility import paper_trajectory, random_walk_trajectory
from repro.traces.seeds import derived_seed


class TestMobility:
    def test_paper_trajectory_script(self):
        # §6.3.2: hold at -85, move to -105 by t=26 s, back by 30 s.
        ch = paper_trajectory(fading_std_db=0.0)
        assert ch.rssi_dbm(0) == -85.0
        assert ch.rssi_dbm(13_000_000) == -85.0
        assert ch.rssi_dbm(26_000_000) == -105.0
        assert ch.rssi_dbm(30_000_000) == -85.0
        assert ch.rssi_dbm(40_000_000) == -85.0
        # Midway out: interpolating downward.
        assert -105.0 < ch.rssi_dbm(20_000_000) < -85.0

    def test_sinr_degrades_with_rssi(self):
        ch = paper_trajectory(fading_std_db=0.0)
        assert ch.sinr_db(26_000_000) < ch.sinr_db(0)

    def test_random_walk_stays_in_bounds(self):
        ch = random_walk_trajectory(duration_s=60.0, seed=3,
                                    bounds_dbm=(-110.0, -85.0),
                                    fading_std_db=0.0)
        rssis = [ch.rssi_dbm(t) for t in range(0, 60_000_000, 500_000)]
        assert all(-110.0 <= r <= -85.0 for r in rssis)

    def test_random_walk_validation(self):
        with pytest.raises(ValueError):
            random_walk_trajectory(duration_s=0)


class TestSeedPlumbing:
    """Every trace process must derive all randomness from its seed."""

    def test_derived_seed_is_deterministic(self):
        assert derived_seed(7, "a", "b") == derived_seed(7, "a", "b")
        assert 0 <= derived_seed(7, "a") < 2**64

    def test_derived_seed_scopes_are_independent(self):
        streams = {derived_seed(7), derived_seed(7, "walk"),
                   derived_seed(7, "fading"), derived_seed(8, "walk"),
                   derived_seed(7, "walk", 0)}
        assert len(streams) == 5

    def test_random_walk_replays_from_seed(self):
        a = random_walk_trajectory(duration_s=10.0, seed=42)
        b = random_walk_trajectory(duration_s=10.0, seed=42)
        times = range(0, 10_000_000, 250_000)
        assert [a.rssi_dbm(t) for t in times] == \
               [b.rssi_dbm(t) for t in times]

    def test_random_walk_seed_changes_walk(self):
        a = random_walk_trajectory(duration_s=10.0, seed=1,
                                   fading_std_db=0.0)
        b = random_walk_trajectory(duration_s=10.0, seed=2,
                                   fading_std_db=0.0)
        times = range(0, 10_000_000, 250_000)
        assert [a.rssi_dbm(t) for t in times] != \
               [b.rssi_dbm(t) for t in times]

    def test_random_walk_fading_stream_is_decorrelated(self):
        # The walk and the fading must come from independent derived
        # streams: the underlying (fading-free) walk cannot change when
        # fading is turned on.
        flat = random_walk_trajectory(duration_s=10.0, seed=5,
                                      fading_std_db=0.0)
        faded = random_walk_trajectory(duration_s=10.0, seed=5,
                                       fading_std_db=3.0)
        assert list(flat._times) == list(faded._times)
        assert list(flat._rssi) == list(faded._rssi)

    def test_paper_cells_replays_from_seed(self):
        a = paper_cells(seed=3)["20MHz"]
        b = paper_cells(seed=3)["20MHz"]
        assert a.hourly_user_counts() == b.hourly_user_counts()
        assert np.array_equal(a.user_rates_mbps_per_prb(200),
                              b.user_rates_mbps_per_prb(200))


class TestCellActivity:
    def test_diurnal_shape_peaks_in_afternoon(self):
        assert DIURNAL_SHAPE.argmax() == 14
        assert DIURNAL_SHAPE.min() > 0

    def test_hourly_counts_follow_shape(self):
        cell = DiurnalCellActivity(peak_users_per_hour=190, seed=1)
        counts = cell.hourly_user_counts()
        assert len(counts) == 24
        # Afternoon busier than pre-dawn (paper Figure 11a).
        assert np.mean(counts[12:20]) > 4 * np.mean(counts[1:5])

    def test_off_hours_zero(self):
        cell = DiurnalCellActivity(off_hours=(0, 1, 2), seed=1)
        counts = cell.hourly_user_counts()
        assert counts[0] == counts[1] == counts[2] == 0
        assert counts[12] > 0

    def test_rate_distribution_mostly_low_rate(self):
        # Figure 11(b): >70% of users below half the 1.8 Mbit/s/PRB max.
        cell = DiurnalCellActivity(seed=2)
        rates = cell.user_rates_mbps_per_prb(4_000)
        assert rates.max() <= 1.8 * 1.05
        frac_low = np.mean(rates < 0.9)
        assert 0.6 < frac_low < 0.9

    def test_paper_cells_config(self):
        cells = paper_cells()
        assert set(cells) == {"20MHz", "10MHz"}
        assert cells["10MHz"].off_hours == {0, 1, 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalCellActivity(peak_users_per_hour=0)
        with pytest.raises(ValueError):
            DiurnalCellActivity(off_hours=(25,))
        with pytest.raises(ValueError):
            DiurnalCellActivity().user_sinrs_db(-1)
