"""Tests for component carriers and aggregation state."""

import pytest

from repro.phy.carrier import AggregationState, CarrierConfig


def test_carrier_config_prbs():
    assert CarrierConfig(0, 20.0).total_prbs == 100
    assert CarrierConfig(1, 10.0).total_prbs == 50


def test_aggregation_requires_primary():
    with pytest.raises(ValueError):
        AggregationState(configured=[])


def test_aggregation_starts_with_primary_only():
    agg = AggregationState(configured=[0, 1, 2])
    assert agg.primary_cell == 0
    assert agg.active_cells == [0]
    assert agg.can_activate
    assert not agg.can_deactivate


def test_sequential_activation_order():
    # §3: the network activates configured cells sequentially.
    agg = AggregationState(configured=[0, 1, 2])
    assert agg.activate_next() == 1
    assert agg.activate_next() == 2
    assert agg.active_cells == [0, 1, 2]
    assert not agg.can_activate
    with pytest.raises(ValueError):
        agg.activate_next()


def test_deactivation_reverse_order_primary_protected():
    agg = AggregationState(configured=[0, 1, 2], active_count=3)
    assert agg.deactivate_last() == 2
    assert agg.deactivate_last() == 1
    with pytest.raises(ValueError):
        agg.deactivate_last()
    assert agg.active_cells == [0]


def test_active_count_validation():
    with pytest.raises(ValueError):
        AggregationState(configured=[0], active_count=2)
    with pytest.raises(ValueError):
        AggregationState(configured=[0], active_count=0)


def test_prb_override():
    from repro.phy.carrier import CarrierConfig
    assert CarrierConfig(0, prb_override=273).total_prbs == 273


def test_nr_carrier_presets():
    from repro.phy.carrier import nr_carrier
    import pytest
    assert nr_carrier(0, 100.0).total_prbs == 273
    assert nr_carrier(0, 40.0).total_prbs == 106
    with pytest.raises(ValueError, match="non-standard NR"):
        nr_carrier(0, 37.0)


def test_nr_cell_end_to_end():
    """A 100 MHz NR carrier carries several hundred Mbit/s and PBE
    tracks it like any LTE cell."""
    from repro.harness import Scenario, run_flow
    from repro.phy.carrier import nr_carrier
    scenario = Scenario(name="nr", carriers=[nr_carrier(0)],
                        aggregated_cells=1, mean_sinr_db=24.0,
                        fading_std_db=0.0, duration_s=1.5, seed=3)
    result = run_flow(scenario, "pbe")
    assert result.summary.average_throughput_mbps > 250.0
    assert result.summary.p95_delay_ms < 50.0
