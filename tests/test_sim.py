"""Tests for the discrete-event simulator core."""

import pytest

from repro.net.sim import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0


def test_events_run_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(300, fired.append, "c")
    sim.schedule(100, fired.append, "a")
    sim.schedule(200, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(50, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(123, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123]
    assert sim.now == 123


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, "early")
    sim.schedule(900, fired.append, "late")
    sim.run(until_us=500)
    assert fired == ["early"]
    assert sim.now == 500  # clock left exactly at the horizon
    sim.run()
    assert fired == ["early", "late"]


def test_run_for_is_relative_to_current_clock():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.run_for(150)
    assert sim.now == 150
    sim.schedule(100, fired.append, 2)  # at absolute 250
    sim.run_for(150)
    assert sim.now == 300
    assert fired == [1, 2]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(50, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(100, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_one_of_many():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, "keep1")
    victim = sim.schedule(100, fired.append, "cancel")
    sim.schedule(100, fired.append, "keep2")
    victim.cancel()
    sim.run()
    assert fired == ["keep1", "keep2"]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 30


def test_stop_halts_the_loop():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, 1)
    sim.schedule(20, sim.stop)
    sim.schedule(30, fired.append, 2)
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 2]


def test_pending_events_counts_queue():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0


def test_now_seconds():
    sim = Simulator()
    sim.schedule(2_500_000, lambda: None)
    sim.run()
    assert sim.now_seconds == pytest.approx(2.5)


def test_callback_args_passed_through():
    sim = Simulator()
    got = []
    sim.schedule(5, lambda a, b: got.append((a, b)), 1, "two")
    sim.run()
    assert got == [(1, "two")]
