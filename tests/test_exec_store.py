"""ResultStore and atomic-JSON-write behaviour (no simulation here)."""

import json
import os

import pytest

from repro.exec import ResultStore, payload_checksum
from repro.exec.store import ENVELOPE_KEY, SCHEMA_VERSION
from repro.harness.serialize import write_json_atomic

FP = "ab" + "0" * 62
FP2 = "cd" + "1" * 62


def test_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "cache")
    assert store.get(FP) is None
    assert FP not in store
    store.put(FP, {"x": 1.5, "nested": {"k": [1, 2]}})
    assert FP in store
    assert store.get(FP) == {"x": 1.5, "nested": {"k": [1, 2]}}
    assert len(store) == 1


def test_entries_sharded_by_prefix(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, {})
    store.put(FP2, {})
    assert (tmp_path / "ab" / f"{FP}.json").is_file()
    assert (tmp_path / "cd" / f"{FP2}.json").is_file()
    assert len(store) == 2


def test_corrupt_entry_quarantined_not_crashed(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, {"ok": True})
    path = store.path_for(FP)
    path.write_text('{"ok": tru')  # truncated mid-write
    assert store.get(FP) is None
    assert not path.exists()  # gone from the shard...
    quarantined = store.quarantine_root / f"{FP}.json"
    assert quarantined.is_file()  # ...but preserved for diagnosis
    assert store.quarantine_events == 1
    assert store.stats().quarantined == 1
    log = (store.quarantine_root / "log.jsonl").read_text()
    assert FP in log and "unparseable" in log


def test_checksum_mismatch_quarantined(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, {"ok": True})
    path = store.path_for(FP)
    entry = json.loads(path.read_text())
    entry["payload"]["ok"] = False  # bit-rot inside the payload
    path.write_text(json.dumps(entry))
    assert store.get(FP) is None
    assert (store.quarantine_root / f"{FP}.json").is_file()


def test_unknown_envelope_schema_quarantined(tmp_path):
    store = ResultStore(tmp_path)
    store.path_for(FP).parent.mkdir(parents=True)
    store.path_for(FP).write_text(json.dumps(
        {ENVELOPE_KEY: SCHEMA_VERSION + 1, "sha256": "x",
         "payload": {}}))
    assert store.get(FP) is None
    assert store.quarantine_events == 1


def test_legacy_plain_entry_still_readable(tmp_path):
    store = ResultStore(tmp_path)
    store.path_for(FP).parent.mkdir(parents=True)
    store.path_for(FP).write_text('{"pre": "envelope"}')
    assert store.get(FP) == {"pre": "envelope"}
    assert store.quarantine_events == 0


def test_put_writes_checksummed_envelope(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, {"x": 1})
    entry = json.loads(store.path_for(FP).read_text())
    assert entry[ENVELOPE_KEY] == SCHEMA_VERSION
    assert entry["sha256"] == payload_checksum({"x": 1})
    assert entry["payload"] == {"x": 1}


def test_non_dict_entry_quarantined(tmp_path):
    store = ResultStore(tmp_path)
    store.path_for(FP).parent.mkdir(parents=True)
    store.path_for(FP).write_text("[1, 2, 3]")
    assert store.get(FP) is None
    assert FP not in store
    assert store.quarantine_events == 1


def test_malformed_fingerprint_rejected(tmp_path):
    store = ResultStore(tmp_path)
    for bad in ("", "../escape", "a/b", "a.b", "ABCDEF01", "short",
                "quarantine", None, 42):
        with pytest.raises(ValueError) as err:
            store.path_for(bad)
        assert "lowercase hex digest" in str(err.value)  # says why


def test_stats_and_len_cover_nested_and_quarantined(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, {"a": 1})
    store.put(FP2, {"b": 2})
    # an entry nested deeper than one shard level still counts
    nested = tmp_path / "ef" / "deep" / ("ef" + "2" * 62 + ".json")
    nested.parent.mkdir(parents=True)
    nested.write_text("{}")
    assert len(store) == 3
    store.path_for(FP).write_text("broken")
    assert store.get(FP) is None  # quarantined
    assert len(store) == 2  # live entries only
    stats = store.stats()
    assert stats.entries == 2
    assert stats.bytes > 0
    assert stats.quarantined == 1
    assert "2 entries" in stats.format()


def test_verify_upgrades_legacy_and_reports(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, {"modern": True})
    legacy_path = store.path_for(FP2)
    legacy_path.parent.mkdir(parents=True)
    legacy_path.write_text('{"legacy": true}')
    bad = "ee" + "3" * 62
    store.path_for(bad).parent.mkdir(parents=True)
    store.path_for(bad).write_text("not json")
    (tmp_path / "ab" / "README.txt.json").write_text("{}")

    report = store.verify()
    assert report["checked"] == 3
    assert report["ok"] == 2
    assert report["upgraded"] == 1
    assert report["quarantined"] == 1
    assert report["foreign"] == 1
    # the legacy entry now carries the envelope and still reads back
    entry = json.loads(legacy_path.read_text())
    assert entry[ENVELOPE_KEY] == SCHEMA_VERSION
    assert store.get(FP2) == {"legacy": True}


def test_gc_reclaims_quarantine_and_debris(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, {"keep": True})
    store.path_for(FP2).parent.mkdir(parents=True)
    store.path_for(FP2).write_text("broken")
    assert store.get(FP2) is None  # -> quarantine
    stray = tmp_path / "ab" / ".x.json.123.tmp"
    stray.write_text("debris")
    # age the stray past the grace window: gc treats *young* tmp files
    # as possibly-live atomic writes and leaves them alone
    old = 1_000_000.0
    os.utime(stray, (old, old))

    out = store.gc()
    assert out["removed"] >= 3  # entry + quarantine log + stray tmp
    assert out["bytes"] > 0
    assert not store.quarantine_root.exists()
    assert not stray.exists()
    assert store.get(FP) == {"keep": True}  # valid entries untouched


def test_gc_spares_fresh_tmp_of_a_concurrent_writer(tmp_path):
    # Regression: gc used to unlink every *.tmp unconditionally, so a
    # concurrent sweep's in-flight write_json_atomic temp file could
    # vanish between write and os.replace, killing that sweep's put().
    store = ResultStore(tmp_path)
    live = tmp_path / "ab" / f".{FP}.json.777.tmp"
    live.parent.mkdir(parents=True)
    live.write_text('{"half": "written"}')  # mtime = now

    out = store.gc()
    assert live.exists()  # inside the grace window: untouched
    assert out["removed"] == 0
    # an explicit zero grace (operator knows no sweep is running)
    # reclaims it
    out = store.gc(tmp_grace_s=0.0)
    assert not live.exists()
    assert out["removed"] == 1


def test_discard_missing_is_fine(tmp_path):
    ResultStore(tmp_path).discard(FP)


# ---------------------------------------------------------------------
def test_write_json_atomic_creates_parents(tmp_path):
    path = tmp_path / "deep" / "nested" / "out.json"
    write_json_atomic({"a": 1}, path)
    assert json.loads(path.read_text()) == {"a": 1}


def test_write_json_atomic_leaves_no_temp_debris(tmp_path):
    path = tmp_path / "out.json"
    write_json_atomic([1, 2], path)
    write_json_atomic([3, 4], path)  # overwrite in place
    assert json.loads(path.read_text()) == [3, 4]
    assert os.listdir(tmp_path) == ["out.json"]


def test_write_json_atomic_failure_keeps_old_content(tmp_path):
    path = tmp_path / "out.json"
    write_json_atomic({"good": True}, path)
    with pytest.raises(TypeError):
        write_json_atomic({"bad": object()}, path)
    # old archive untouched, no temp files left behind
    assert json.loads(path.read_text()) == {"good": True}
    assert os.listdir(tmp_path) == ["out.json"]


# ---------------------------------------------------------------------
def _hammer_store(root, fp, value, barrier):
    """Child-process body for the concurrent-writer stress test."""
    from repro.exec import ResultStore
    barrier.wait()  # maximize overlap
    store = ResultStore(root)
    for _ in range(25):
        store.put(fp, {"value": value})


def test_concurrent_writers_same_fingerprint_never_corrupt(tmp_path):
    # Two sweeps sharing a cache (or a fleet's duplicate completion)
    # can race put() on one fingerprint.  Hammer the same entry from
    # many processes and assert every interleaving resolves to one
    # complete, valid envelope — last-write-wins, never a quarantined
    # half-entry.
    import multiprocessing

    ctx = multiprocessing.get_context()
    n = 4
    barrier = ctx.Barrier(n)
    procs = [ctx.Process(target=_hammer_store,
                         args=(str(tmp_path), FP, i, barrier))
             for i in range(n)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    store = ResultStore(tmp_path)
    payload = store.get(FP)
    assert payload in [{"value": i} for i in range(n)]
    assert store.quarantine_events == 0
    assert not store.quarantine_root.exists()
    # No temp debris: every loser's file was cleaned up by replace.
    assert list(tmp_path.rglob("*.tmp")) == []


def test_put_fsyncs_through_write_json_atomic(tmp_path, monkeypatch):
    # put() asks for durability; the fsync must actually reach the OS.
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync",
                        lambda fd: (synced.append(fd),
                                    real_fsync(fd))[1])
    ResultStore(tmp_path).put(FP, {"x": 1})
    assert synced
