"""ResultStore and atomic-JSON-write behaviour (no simulation here)."""

import json
import os

import pytest

from repro.exec import ResultStore
from repro.harness.serialize import write_json_atomic

FP = "ab" + "0" * 62
FP2 = "cd" + "1" * 62


def test_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "cache")
    assert store.get(FP) is None
    assert FP not in store
    store.put(FP, {"x": 1.5, "nested": {"k": [1, 2]}})
    assert FP in store
    assert store.get(FP) == {"x": 1.5, "nested": {"k": [1, 2]}}
    assert len(store) == 1


def test_entries_sharded_by_prefix(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, {})
    store.put(FP2, {})
    assert (tmp_path / "ab" / f"{FP}.json").is_file()
    assert (tmp_path / "cd" / f"{FP2}.json").is_file()
    assert len(store) == 2


def test_corrupt_entry_discarded_not_crashed(tmp_path):
    store = ResultStore(tmp_path)
    store.put(FP, {"ok": True})
    path = store.path_for(FP)
    path.write_text('{"ok": tru')  # truncated mid-write
    assert store.get(FP) is None
    assert not path.exists()  # debris removed; next run re-executes


def test_non_dict_entry_discarded(tmp_path):
    store = ResultStore(tmp_path)
    store.path_for(FP).parent.mkdir(parents=True)
    store.path_for(FP).write_text("[1, 2, 3]")
    assert store.get(FP) is None
    assert FP not in store


def test_malformed_fingerprint_rejected(tmp_path):
    store = ResultStore(tmp_path)
    for bad in ("", "../escape", "a/b", "a.b"):
        with pytest.raises(ValueError):
            store.path_for(bad)


def test_discard_missing_is_fine(tmp_path):
    ResultStore(tmp_path).discard(FP)


# ---------------------------------------------------------------------
def test_write_json_atomic_creates_parents(tmp_path):
    path = tmp_path / "deep" / "nested" / "out.json"
    write_json_atomic({"a": 1}, path)
    assert json.loads(path.read_text()) == {"a": 1}


def test_write_json_atomic_leaves_no_temp_debris(tmp_path):
    path = tmp_path / "out.json"
    write_json_atomic([1, 2], path)
    write_json_atomic([3, 4], path)  # overwrite in place
    assert json.loads(path.read_text()) == [3, 4]
    assert os.listdir(tmp_path) == ["out.json"]


def test_write_json_atomic_failure_keeps_old_content(tmp_path):
    path = tmp_path / "out.json"
    write_json_atomic({"good": True}, path)
    with pytest.raises(TypeError):
        write_json_atomic({"bad": object()}, path)
    # old archive untouched, no temp files left behind
    assert json.loads(path.read_text()) == {"good": True}
    assert os.listdir(tmp_path) == ["out.json"]
