"""Tests for unit conventions and conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.net import units


def test_subframe_is_one_millisecond():
    assert units.SUBFRAME_US == 1_000
    assert units.US_PER_MS == 1_000
    assert units.US_PER_S == 1_000_000


def test_mss_is_1500_bytes():
    assert units.MSS_BYTES == 1500
    assert units.MSS_BITS == 12_000


def test_seconds_roundtrip():
    assert units.seconds(2_500_000) == 2.5
    assert units.us_from_seconds(2.5) == 2_500_000


def test_ms_roundtrip():
    assert units.ms(1_500) == 1.5
    assert units.us_from_ms(1.5) == 1_500


def test_mbps_conversions():
    assert units.mbps(12_000_000) == 12.0
    assert units.bps_from_mbps(12.0) == 12_000_000


def test_transmission_time_basic():
    # 12000 bits at 12 Mbit/s = 1 ms.
    assert units.transmission_time_us(12_000, 12e6) == 1_000


def test_transmission_time_minimum_one_microsecond():
    assert units.transmission_time_us(1, 1e12) == 1


def test_transmission_time_rejects_bad_rate():
    with pytest.raises(ValueError):
        units.transmission_time_us(100, 0)
    with pytest.raises(ValueError):
        units.transmission_time_us(100, -5)


@given(st.integers(min_value=0, max_value=10**9),
       st.floats(min_value=1e3, max_value=1e12))
def test_transmission_time_non_negative_and_scales(bits, rate):
    t = units.transmission_time_us(bits, rate)
    assert t >= 1
    # Doubling the payload at least does not shrink the time.
    assert units.transmission_time_us(2 * bits, rate) >= t


@given(st.floats(min_value=0.001, max_value=10_000.0))
def test_seconds_us_roundtrip_is_close(s):
    # Quantization to integer microseconds costs at most half a µs.
    assert abs(units.seconds(units.us_from_seconds(s)) - s) <= 5e-7
