"""Unit tests for the BBR implementation."""

import pytest

from repro.baselines.base import AckContext
from repro.baselines.bbr import (
    DRAIN,
    PROBE_BW,
    PROBE_BW_GAINS,
    PROBE_RTT,
    STARTUP,
    STARTUP_GAIN,
    Bbr,
)
from repro.net.packet import Packet


def _ack(now_us, rtt_us=40_000, rate_bps=50e6, bits=12_000,
         inflight=120_000, app_limited=False):
    ack = Packet(1, 0, is_ack=True)
    return AckContext(ack=ack, now_us=now_us, rtt_us=rtt_us,
                      delivery_rate_bps=rate_bps, newly_acked_bits=bits,
                      inflight_bits=inflight, app_limited=app_limited)


def _feed(bbr, start_us, count, gap_us=1_000, **kw):
    t = start_us
    for _ in range(count):
        bbr.on_ack(_ack(t, **kw))
        t += gap_us
    return t


def test_starts_in_startup_with_high_gain():
    bbr = Bbr()
    assert bbr.state == STARTUP
    assert bbr.pacing_gain == pytest.approx(STARTUP_GAIN)
    assert bbr.pacing_rate_bps(0) == bbr.initial_rate_bps


def test_filters_track_ack_stream():
    bbr = Bbr()
    _feed(bbr, 0, 50, rate_bps=80e6, rtt_us=30_000)
    assert bbr.btlbw_bps == pytest.approx(80e6)
    assert bbr.rtprop_us == 30_000


def test_app_limited_samples_ignored_by_btlbw():
    bbr = Bbr()
    _feed(bbr, 0, 20, rate_bps=80e6)
    _feed(bbr, 20_000, 20, rate_bps=500e6, app_limited=True)
    assert bbr.btlbw_bps == pytest.approx(80e6)


def test_startup_exits_on_bandwidth_plateau():
    bbr = Bbr()
    # Constant delivery rate: three rounds without 25% growth.
    _feed(bbr, 0, 1200, rate_bps=50e6)
    assert bbr.filled_pipe
    assert bbr.state in (DRAIN, PROBE_BW)


def test_drain_enters_probe_bw_when_inflight_drops():
    bbr = Bbr()
    _feed(bbr, 0, 1200, rate_bps=50e6, inflight=10**7)
    assert bbr.state == DRAIN
    bbr.on_ack(_ack(1_500_000, inflight=0))
    assert bbr.state == PROBE_BW


def test_probe_bw_cycles_through_gains():
    bbr = Bbr()
    _feed(bbr, 0, 1200, rate_bps=50e6, inflight=0)
    assert bbr.state == PROBE_BW
    seen = set()
    t = 1_500_000
    for _ in range(400):
        bbr.on_ack(_ack(t, inflight=0))
        seen.add(bbr.pacing_gain)
        t += 1_000
    assert seen == set(PROBE_BW_GAINS)


def test_probe_rate_cap_limits_probing_gain():
    cap_holder = {"cap": 55e6}
    bbr = Bbr(probe_rate_cap=lambda: cap_holder["cap"])
    _feed(bbr, 0, 1200, rate_bps=50e6, inflight=0)
    t = 1_500_000
    rates = []
    for _ in range(400):
        bbr.on_ack(_ack(t, inflight=0))
        rates.append(bbr.pacing_rate_bps(t))
        t += 1_000
    # Probing phases capped at Cf=55M rather than 1.25*50M=62.5M.
    assert max(rates) <= 55e6 * 1.001
    # The cap never pushes the rate below BtlBw itself.
    cap_holder["cap"] = 10e6
    bbr.pacing_gain = 1.25
    assert bbr.pacing_rate_bps(t) >= 50e6 * 0.999


def test_cwnd_is_two_bdp_in_probe_bw():
    bbr = Bbr()
    _feed(bbr, 0, 1200, rate_bps=50e6, rtt_us=40_000, inflight=0)
    assert bbr.state == PROBE_BW
    expected = 2.0 * 50e6 * 0.040
    assert bbr.cwnd_bits(0) == pytest.approx(expected, rel=0.05)


def test_probe_rtt_after_stale_rtprop():
    bbr = Bbr()
    _feed(bbr, 0, 1200, rate_bps=50e6, inflight=0)
    # 12 seconds with no new RTT minimum.
    t = 12_000_000
    bbr.on_ack(_ack(t, rtt_us=50_000, inflight=0))
    assert bbr.state == PROBE_RTT
    assert bbr.cwnd_bits(t) == 4 * bbr.mss_bits
    # After 200 ms at low inflight it returns to PROBE_BW.
    bbr.on_ack(_ack(t + 1_000, rtt_us=50_000, inflight=0))
    bbr.on_ack(_ack(t + 250_000, rtt_us=50_000, inflight=0))
    assert bbr.state == PROBE_BW


def test_timeout_resets_to_startup():
    bbr = Bbr()
    _feed(bbr, 0, 1200, rate_bps=50e6, inflight=0)
    bbr.on_timeout(1_000_000)
    assert bbr.state == STARTUP
    assert not bbr.filled_pipe


def test_validation():
    with pytest.raises(ValueError):
        Bbr(initial_rate_bps=0)
