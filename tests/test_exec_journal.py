"""Sweep journal: append-only JSONL history and tolerant replay."""

import json

import pytest

from repro.exec import (
    JOURNAL_NAME,
    Job,
    JobFailure,
    ParallelRunner,
    ResultStore,
    SweepJournal,
    is_failure,
    make_runner,
    sweep_fingerprint,
)
from repro.harness import Scenario
from repro.phy.carrier import CarrierConfig


def tiny_scenario(seed=7, **overrides):
    base = dict(name=f"jrn-{seed}", carriers=[CarrierConfig(0, 10.0)],
                aggregated_cells=1, mean_sinr_db=14.0,
                duration_s=1.0, seed=seed)
    base.update(overrides)
    return Scenario(**base)


def sample_failure(fp="ab" * 32):
    return JobFailure(label="x/pbe", fingerprint=fp, kind="job-error",
                      exc_type="ValueError", message="boom",
                      traceback="tb", attempts=1, wall_s=0.1)


# ---------------------------------------------------------------------
def test_sweep_fingerprint_is_order_insensitive():
    a = sweep_fingerprint(["11" * 32, "22" * 32])
    b = sweep_fingerprint(["22" * 32, "11" * 32, "11" * 32])
    assert a == b
    assert a != sweep_fingerprint(["11" * 32])


def test_journal_records_and_replays(tmp_path):
    journal = SweepJournal(tmp_path / "journal.jsonl")
    journal.begin("s" * 64, total=3)
    journal.record_done("11" * 32, "a/pbe", wall_s=1.25)
    journal.record_failure(sample_failure("22" * 32))
    journal.end("interrupted")

    state = journal.replay()
    assert state.sweep == "s" * 64
    assert state.total == 3
    assert state.done == {"11" * 32}
    assert set(state.failed) == {"22" * 32}
    assert state.failed["22" * 32].message == "boom"
    assert state.ended == "interrupted"
    assert state.malformed == 0
    assert "1 done, 1 failed of 3 jobs" in state.summary()
    assert "interrupted" in state.summary()


def test_replay_of_missing_journal_is_empty(tmp_path):
    state = SweepJournal(tmp_path / "nope.jsonl").replay()
    assert state.done == set() and state.failed == {}
    assert state.ended is None


def test_replay_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = SweepJournal(path)
    journal.begin("s" * 64, total=2)
    journal.record_done("11" * 32, "a/pbe", wall_s=1.0)
    # simulate SIGKILL mid-append: a partial final line
    with open(path, "a") as handle:
        handle.write('{"kind": "job", "status": "do')
    state = journal.replay()
    assert state.done == {"11" * 32}
    assert state.malformed == 1


def test_replay_last_status_wins(tmp_path):
    journal = SweepJournal(tmp_path / "journal.jsonl")
    fp = "11" * 32
    journal.begin("s" * 64, total=1)
    journal.record_failure(sample_failure(fp))
    # a later run (appended to the same journal) finishes the job
    journal.begin("s" * 64, total=1)
    journal.record_done(fp, "a/pbe", wall_s=2.0)
    journal.end("complete")
    state = journal.replay()
    assert state.done == {fp}
    assert state.failed == {}
    assert state.ended == "complete"


def test_appends_are_flushed_per_line(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = SweepJournal(path)
    journal.begin("s" * 64, total=1)
    # visible on disk immediately, without any close/end call
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["kind"] == "sweep"


def test_journal_write_failure_degrades_not_aborts(tmp_path, capsys):
    # Regression: a transient journal OSError on the completion hot
    # path used to abort the whole sweep — the opposite of the
    # failure-isolation the journal exists to support.
    obstacle = tmp_path / "not-a-dir"
    obstacle.write_text("file where the journal's parent should be")
    journal = SweepJournal(obstacle / "journal.jsonl")
    journal.begin("s" * 64, total=1)  # does not raise
    assert journal.broken
    journal.record_done("11" * 32, "a/pbe", wall_s=1.0)  # no-op, no raise
    assert "journal write" in capsys.readouterr().err
    assert journal.replay().done == set()


def test_broken_journal_does_not_abort_the_sweep(tmp_path, capsys):
    store = ResultStore(tmp_path / "cache")
    obstacle = tmp_path / "blocked"
    obstacle.write_text("")
    runner = ParallelRunner(
        jobs=1, store=store,
        journal=SweepJournal(obstacle / "journal.jsonl"))
    [payload] = runner.run([Job(tiny_scenario(seed=1), "bbr")])
    assert not is_failure(payload)      # sweep completed journal-less
    assert len(store) == 1              # payload still persisted
    assert runner.journal.broken
    capsys.readouterr()


# ---------------------------------------------------------------------
# Runner integration: make_runner journals beside the cache by default.
def test_runner_journals_outcomes(tmp_path):
    runner = make_runner(jobs=1, cache_dir=tmp_path)
    jobs = [Job(tiny_scenario(seed=1), "bbr"),
            Job(tiny_scenario(seed=2), "warp-drive")]
    results = runner.run(jobs)
    assert not is_failure(results[0]) and is_failure(results[1])

    journal = SweepJournal(tmp_path / JOURNAL_NAME)
    state = journal.replay()
    assert state.total == 2
    assert state.sweep == sweep_fingerprint(
        [j.fingerprint() for j in jobs])
    assert state.done == {jobs[0].fingerprint()}
    assert set(state.failed) == {jobs[1].fingerprint()}
    assert state.ended == "complete"


def test_runner_skips_journal_when_everything_is_cached(tmp_path):
    jobs = [Job(tiny_scenario(seed=1), "bbr")]
    make_runner(jobs=1, cache_dir=tmp_path).run(jobs)
    journal_path = tmp_path / JOURNAL_NAME
    before = journal_path.read_text()
    warm = make_runner(jobs=1, cache_dir=tmp_path)
    warm.run(jobs)
    assert warm.stats.cache_hits == 1
    # a pure cache-hit run appends nothing — no spurious sweep headers
    assert journal_path.read_text() == before


def test_journal_can_be_disabled(tmp_path):
    runner = make_runner(jobs=1, cache_dir=tmp_path, journal=False)
    runner.run([Job(tiny_scenario(seed=1), "bbr")])
    assert not (tmp_path / JOURNAL_NAME).exists()


def test_resume_reexecutes_only_failures(tmp_path):
    """The resume contract: done jobs are cache hits, failed re-run."""
    jobs = [Job(tiny_scenario(seed=1), "bbr"),
            Job(tiny_scenario(seed=2), "warp-drive")]
    make_runner(jobs=1, cache_dir=tmp_path).run(jobs)

    again = make_runner(jobs=1, cache_dir=tmp_path)
    results = again.run(jobs)
    assert again.stats.cache_hits == 1  # done job not recomputed
    assert again.stats.failed == 1      # failure re-attempted, not skipped
    assert is_failure(results[1])

    state = SweepJournal(tmp_path / JOURNAL_NAME).replay()
    assert len(state.done) == 1 and len(state.failed) == 1


def test_strict_abort_finalizes_stats_and_journal(tmp_path):
    # Regression: a strict-mode job exception used to skip _finish and
    # the journal end marker — replay() reported ended=None and
    # stats.wall_s stayed 0 for a run that actually aborted.
    runner = make_runner(jobs=1, cache_dir=tmp_path, strict=True)
    jobs = [Job(tiny_scenario(seed=1), "bbr"),
            Job(tiny_scenario(seed=2), "warp-drive"),
            Job(tiny_scenario(seed=3), "bbr")]
    with pytest.raises(ValueError):
        runner.run(jobs)
    assert runner.stats.wall_s > 0
    state = SweepJournal(tmp_path / JOURNAL_NAME).replay()
    assert state.ended == "aborted"
    assert state.done == {jobs[0].fingerprint()}  # recorded pre-abort


def test_explicit_journal_object(tmp_path):
    store = ResultStore(tmp_path / "cache")
    journal = SweepJournal(tmp_path / "elsewhere.jsonl")
    runner = ParallelRunner(jobs=1, store=store, journal=journal)
    runner.run([Job(tiny_scenario(seed=1), "bbr")])
    state = journal.replay()
    assert len(state.done) == 1
    assert state.ended == "complete"
