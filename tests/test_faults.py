"""Tests for the fault-injection subsystem (repro.faults)."""

import os
import subprocess
import sys

import pytest

from repro.core.feedback import PbeFeedback
from repro.faults import FaultSpec, ImpairedPipe, LossyDecoder, derived_rng
from repro.monitor.decoder import ControlChannelDecoder
from repro.net.packet import Packet
from repro.net.sim import Simulator
from repro.phy.dci import DciMessage, SubframeRecord


def _record(subframe, cell=0, n_msgs=2, total_prbs=50, n_prbs=5):
    rec = SubframeRecord(subframe, cell, total_prbs)
    for i in range(n_msgs):
        rec.messages.append(DciMessage(subframe, cell, 100 + i, n_prbs,
                                       10, 1, tbs_bits=5_000))
    return rec


def _lossy(spec, cell=0):
    got = []
    decoder = ControlChannelDecoder(cell, got.append)
    return LossyDecoder(decoder, spec), got


def _ack(seq, feedback=None):
    pkt = Packet(1, seq, is_ack=True, acked_seq=seq)
    pkt.feedback = feedback
    return pkt


class _Sink:
    def __init__(self, sim=None):
        self.sim = sim
        self.packets = []

    def receive(self, packet):
        now = self.sim.now if self.sim is not None else 0
        self.packets.append((now, packet))


# ----------------------------------------------------------------------
# FaultSpec
# ----------------------------------------------------------------------
def test_spec_rejects_out_of_range_rates():
    with pytest.raises(ValueError):
        FaultSpec(dci_miss_rate=1.5)
    with pytest.raises(ValueError):
        FaultSpec(ack_loss_rate=-0.1)
    with pytest.raises(ValueError):
        FaultSpec(outage_mean_subframes=0)
    with pytest.raises(ValueError):
        FaultSpec(outages=[(-1, 10)])
    with pytest.raises(ValueError):
        FaultSpec(ack_reorder_delay_us=-1)


def test_spec_roundtrips_through_json_dict():
    spec = FaultSpec(seed=3, dci_miss_rate=0.2, outages=[[100, 50]],
                     ack_loss_rate=0.01, feedback_corrupt_rate=0.005)
    rebuilt = FaultSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.outages == ((100, 50),)


def test_spec_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown fault fields"):
        FaultSpec.from_dict({"dci_miss_rate": 0.1, "bogus": 1})


def test_spec_impairment_properties():
    assert FaultSpec().is_noop
    assert not FaultSpec().impairs_decoder
    assert not FaultSpec().impairs_pipe
    assert FaultSpec(dci_miss_rate=0.1).impairs_decoder
    assert FaultSpec(outages=[(0, 10)]).impairs_decoder
    assert not FaultSpec(outages=[(0, 0)]).impairs_decoder
    assert FaultSpec(ack_dup_rate=0.1).impairs_pipe
    assert not FaultSpec(ack_dup_rate=0.1).impairs_decoder


def test_derived_rng_streams_are_independent_and_stable():
    a1 = derived_rng(7, "dci", 0)
    a2 = derived_rng(7, "dci", 0)
    b = derived_rng(7, "dci", 1)
    c = derived_rng(8, "dci", 0)
    seq_a1 = [a1.random() for _ in range(50)]
    assert seq_a1 == [a2.random() for _ in range(50)]
    assert seq_a1 != [b.random() for _ in range(50)]
    assert seq_a1 != [c.random() for _ in range(50)]


# ----------------------------------------------------------------------
# LossyDecoder
# ----------------------------------------------------------------------
def test_lossy_decoder_noop_forwards_identical_objects():
    lossy, got = _lossy(FaultSpec())
    records = [_record(sf) for sf in range(10)]
    for rec in records:
        lossy.on_subframe(rec)
    assert len(got) == 10
    for original, forwarded in zip(records, got):
        assert forwarded is original  # byte-identical stream
    assert lossy.stats()["records_dropped"] == 0


def test_lossy_decoder_misses_messages():
    lossy, got = _lossy(FaultSpec(seed=1, dci_miss_rate=1.0))
    lossy.on_subframe(_record(0, n_msgs=4))
    assert len(got) == 1
    assert got[0].messages == []
    assert lossy.messages_missed == 4


def test_lossy_decoder_partial_miss_is_deterministic():
    spec = FaultSpec(seed=5, dci_miss_rate=0.5)
    survivors = []
    for _ in range(2):
        lossy, got = _lossy(spec)
        for sf in range(200):
            lossy.on_subframe(_record(sf, n_msgs=4))
        survivors.append([len(r.messages) for r in got])
    assert survivors[0] == survivors[1]
    assert 0 < sum(survivors[0]) < 800  # actually dropped some, not all


def test_lossy_decoder_scheduled_outage_drops_whole_subframes():
    lossy, got = _lossy(FaultSpec(outages=[(10, 5)]))
    for sf in range(20):
        lossy.on_subframe(_record(sf))
    assert [r.subframe for r in got] == [sf for sf in range(20)
                                         if not 10 <= sf < 15]
    assert lossy.outage_subframes == 5
    assert lossy.records_dropped == 5


def test_lossy_decoder_burst_outages_follow_mean_length():
    spec = FaultSpec(seed=2, outage_enter_rate=0.02,
                     outage_mean_subframes=10.0)
    lossy, got = _lossy(spec)
    n = 20_000
    for sf in range(n):
        lossy.on_subframe(_record(sf))
    # Stationary bad-state fraction = enter / (enter + exit) ~ 1/6.
    fraction = lossy.outage_subframes / n
    assert 0.10 < fraction < 0.25


def test_lossy_decoder_ghosts_never_over_allocate():
    # idle_prbs raises on over-allocation, so consuming every forwarded
    # record proves ghosts stay within the subframe's free PRBs.
    spec = FaultSpec(seed=9, dci_false_rate=1.0)
    lossy, got = _lossy(spec)
    for sf in range(300):
        # 48/50 PRBs already taken: at most 2 left for the ghost.
        lossy.on_subframe(_record(sf, n_msgs=8, n_prbs=6))
    assert lossy.false_positives == 300
    for rec in got:
        assert rec.idle_prbs >= 0
        assert any(m.rnti >= 60_000 for m in rec.messages)


def test_lossy_decoder_no_ghost_when_subframe_is_full():
    spec = FaultSpec(seed=9, dci_false_rate=1.0)
    lossy, got = _lossy(spec)
    lossy.on_subframe(_record(0, n_msgs=10, n_prbs=5))  # 50/50 PRBs
    assert lossy.false_positives == 0
    assert got[0].messages == got[0].messages  # forwarded, unmodified
    assert len(got[0].messages) == 10


def test_lossy_decoder_flush_drains_latency_buffer():
    got = []
    decoder = ControlChannelDecoder(0, got.append,
                                    decode_latency_subframes=3)
    lossy = LossyDecoder(decoder, FaultSpec())
    for sf in range(5):
        lossy.on_subframe(_record(sf))
    assert len(got) == 2  # three records stranded in the buffer
    lossy.flush()
    assert [r.subframe for r in got] == list(range(5))


# ----------------------------------------------------------------------
# ImpairedPipe
# ----------------------------------------------------------------------
def test_impaired_pipe_noop_is_synchronous_and_identical():
    sim = Simulator()
    sink = _Sink(sim)
    pipe = ImpairedPipe(sim, sink, FaultSpec())
    packets = [_ack(seq) for seq in range(10)]
    for pkt in packets:
        pipe.receive(pkt)
    # Delivered inline (no scheduled events) and object-identical.
    assert [p for _, p in sink.packets] == packets
    assert all(got is sent for (_, got), sent
               in zip(sink.packets, packets))
    assert len(sim._heap) == 0


def test_impaired_pipe_drops_everything_at_rate_one():
    sim = Simulator()
    sink = _Sink(sim)
    pipe = ImpairedPipe(sim, sink, FaultSpec(ack_loss_rate=1.0))
    for seq in range(20):
        pipe.receive(_ack(seq))
    assert sink.packets == []
    assert pipe.stats()["dropped"] == 20


def test_impaired_pipe_duplicates():
    sim = Simulator()
    sink = _Sink(sim)
    pipe = ImpairedPipe(sim, sink, FaultSpec(ack_dup_rate=1.0))
    pipe.receive(_ack(0))
    assert len(sink.packets) == 2
    assert sink.packets[0][1] is sink.packets[1][1]


def test_impaired_pipe_reorders_via_delay():
    sim = Simulator()
    sink = _Sink(sim)
    spec = FaultSpec(seed=4, ack_reorder_rate=0.5,
                     ack_reorder_delay_us=5_000)
    pipe = ImpairedPipe(sim, sink, spec)

    def send(seq):
        pipe.receive(_ack(seq))

    for seq in range(40):
        sim.schedule_at(seq * 100, send, seq)
    sim.run()
    assert len(sink.packets) == 40
    seqs = [p.acked_seq for _, p in sink.packets]
    assert sorted(seqs) == list(range(40))
    assert seqs != list(range(40))  # at least one packet overtaken
    assert pipe.reordered > 0


def test_impaired_pipe_corrupts_feedback_without_mutating_original():
    sim = Simulator()
    sink = _Sink(sim)
    spec = FaultSpec(seed=11, feedback_corrupt_rate=1.0)
    pipe = ImpairedPipe(sim, sink, spec)
    original_fb = PbeFeedback.from_rates(50e6, 60e6, False)
    for seq in range(50):
        pipe.receive(_ack(seq, feedback=original_fb))
    assert pipe.corrupted == 50
    erased = flipped = 0
    for _, pkt in sink.packets:
        if pkt.feedback is None:
            erased += 1
        else:
            assert pkt.feedback.target_interval_us \
                != original_fb.target_interval_us
            # The saturating decode path must absorb any 32-bit value.
            assert pkt.feedback.target_rate_bps > 0
            flipped += 1
    assert erased > 0 and flipped > 0
    assert original_fb.target_interval_us \
        == PbeFeedback.from_rates(50e6, 60e6, False).target_interval_us


def test_impaired_pipe_ignores_packets_without_pbe_feedback():
    sim = Simulator()
    sink = _Sink(sim)
    pipe = ImpairedPipe(sim, sink, FaultSpec(feedback_corrupt_rate=1.0))
    pkt = _ack(0)
    pipe.receive(pkt)
    assert pipe.corrupted == 0
    assert sink.packets[0][1] is pkt


# ----------------------------------------------------------------------
# Cross-process determinism
# ----------------------------------------------------------------------
_SCHEDULE_SNIPPET = """
import json, sys
from repro.faults import FaultSpec, LossyDecoder
from repro.monitor.decoder import ControlChannelDecoder
from repro.phy.dci import DciMessage, SubframeRecord

spec = FaultSpec.from_dict(json.loads(sys.argv[1]))
got = []
lossy = LossyDecoder(ControlChannelDecoder(0, got.append), spec)
for sf in range(500):
    rec = SubframeRecord(sf, 0, 50)
    for i in range(4):
        rec.messages.append(
            DciMessage(sf, 0, 100 + i, 5, 10, 1, tbs_bits=5_000))
    lossy.on_subframe(rec)
print(json.dumps([[r.subframe, len(r.messages)] for r in got]))
"""


def test_fault_schedule_identical_across_processes():
    import json

    spec = FaultSpec(seed=42, dci_miss_rate=0.3, dci_false_rate=0.05,
                     outage_enter_rate=0.01, outage_mean_subframes=12.0)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p)
    outputs = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", _SCHEDULE_SNIPPET,
             json.dumps(spec.to_dict())],
            capture_output=True, text=True, env=env, check=True)
        outputs.append(proc.stdout.strip())
    assert outputs[0] == outputs[1]

    lossy, got = _lossy(spec)
    for sf in range(500):
        lossy.on_subframe(_record(sf, n_msgs=4))
    local = json.dumps([[r.subframe, len(r.messages)] for r in got])
    assert local == outputs[0]
