"""Tests for the equal-share water-filling PRB scheduler."""

from hypothesis import given, strategies as st

from repro.cell.scheduler import DemandEntry, allocate_prbs


def _demand(rnti, bits, bpp=1_000):
    return DemandEntry(rnti=rnti, demand_bits=bits, bits_per_prb=bpp)


def test_demand_prbs_is_ceiling():
    assert _demand(1, 1_500, bpp=1_000).demand_prbs == 2
    assert _demand(1, 1_000, bpp=1_000).demand_prbs == 1
    assert _demand(1, 0).demand_prbs == 0


def test_single_backlogged_user_gets_everything():
    grants = allocate_prbs(100, [_demand(1, 10**9)])
    assert grants == {1: 100}


def test_equal_split_between_backlogged_users():
    grants = allocate_prbs(100, [_demand(1, 10**9), _demand(2, 10**9)])
    assert grants == {1: 50, 2: 50}


def test_rotating_remainder():
    demands = [_demand(1, 10**9), _demand(2, 10**9), _demand(3, 10**9)]
    a = allocate_prbs(100, demands, rotation=0)
    b = allocate_prbs(100, demands, rotation=1)
    assert sorted(a.values()) == [33, 33, 34]
    # The odd PRB moves between users across subframes.
    lucky_a = max(a, key=a.get)
    lucky_b = max(b, key=b.get)
    assert lucky_a != lucky_b


def test_waterfilling_redistributes_unneeded_share():
    # User 1 only needs 10 PRBs; user 2 should receive the rest.
    grants = allocate_prbs(100, [_demand(1, 10_000), _demand(2, 10**9)])
    assert grants == {1: 10, 2: 90}


def test_idle_prbs_when_total_demand_small():
    grants = allocate_prbs(100, [_demand(1, 5_000), _demand(2, 7_000)])
    assert grants == {1: 5, 2: 7}
    assert sum(grants.values()) < 100  # the rest stays idle


def test_zero_demand_users_excluded():
    grants = allocate_prbs(100, [_demand(1, 0), _demand(2, 10**9)])
    assert grants == {2: 100}


def test_no_available_prbs():
    assert allocate_prbs(0, [_demand(1, 10**9)]) == {}


def test_more_users_than_prbs():
    demands = [_demand(i, 10**9) for i in range(10)]
    grants = allocate_prbs(4, demands, rotation=0)
    assert sum(grants.values()) == 4
    assert all(v == 1 for v in grants.values())


@given(
    st.integers(min_value=0, max_value=100),
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=10**7),
                  st.integers(min_value=100, max_value=2_000)),
        min_size=0, max_size=8),
    st.integers(min_value=0, max_value=32),
)
def test_never_overallocates_and_respects_demand(available, rows, rotation):
    demands = [DemandEntry(i, bits, bpp)
               for i, (bits, bpp) in enumerate(rows)]
    grants = allocate_prbs(available, demands, rotation)
    assert sum(grants.values()) <= available
    for d in demands:
        granted = grants.get(d.rnti, 0)
        assert granted <= d.demand_prbs
        assert granted >= 0


@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=10, max_value=100))
def test_backlogged_users_within_one_prb(n_users, available):
    demands = [_demand(i, 10**9) for i in range(n_users)]
    grants = allocate_prbs(available, demands, rotation=3)
    values = [grants.get(i, 0) for i in range(n_users)]
    assert max(values) - min(values) <= 1
