"""Metro scenario engine: determinism, sharding, matrix, exec wiring.

The metro engine's contract is end-to-end replayability: one seed
determines the grid layout, the diurnal populations, the walker
trajectories, the fleets — and therefore every shard fingerprint and
the final matrix, byte for byte.  These tests pin that, plus the
shard/exec integration (cache hits return identical payloads) and the
matrix semantics (cell order, defined Jain values on idle cells,
missing-shard accounting).
"""

from __future__ import annotations

import json

import pytest

from repro.exec import make_runner
from repro.metro import (
    GridSpec,
    MetroSet,
    build_grid,
    build_matrix,
    format_summary,
    handovers_into,
    metro_scenario_sets,
    population_plan,
    resolve_set,
    run_metro,
    run_shard,
    shard_fingerprint,
    shard_jobs,
    walker_plan,
)

#: A deliberately tiny set so inline end-to-end tests stay fast.
TINY = MetroSet(
    name="tiny", description="test set",
    grid=GridSpec(name="tiny", n_cells=12, hotspot_fraction=0.1,
                  seed=5),
    hours=(3, 14), hour_s=0.25, shard_cells=6, users_scale=0.02,
    max_users_per_cell=3, walkers_per_shard=2, fleet=("pbe", "cubic"))


# ---------------------------------------------------------------------------
# Grid generation
# ---------------------------------------------------------------------------

def test_grid_is_deterministic():
    spec = GridSpec(name="g", n_cells=60, seed=9)
    assert build_grid(spec).to_dict() == build_grid(spec).to_dict()


def test_grid_seed_changes_layout():
    a = build_grid(GridSpec(name="g", n_cells=60, seed=1))
    b = build_grid(GridSpec(name="g", n_cells=60, seed=2))
    assert a.to_dict() != b.to_dict()


def test_grid_shape_and_tiers():
    grid = build_grid(GridSpec(name="g", n_cells=100,
                               carriers_per_site=3, seed=3))
    assert len(grid.cells) == 100
    assert [c.cell_id for c in grid.cells] == list(range(100))
    # Site primaries are the 20 MHz tier; hotspots are primaries.
    for cell in grid.cells:
        if cell.cell_id % 3 == 0:
            assert cell.bandwidth_mhz == 20.0
        if cell.busy:
            assert cell.bandwidth_mhz == 20.0
            assert not cell.off_hours
    assert grid.busy_cells()


def test_shards_are_site_aligned_and_cover_the_grid():
    grid = build_grid(GridSpec(name="g", n_cells=100,
                               carriers_per_site=3, seed=3))
    shards = grid.shards(10)
    flat = [c.cell_id for shard in shards for c in shard]
    assert flat == list(range(100))
    for shard in shards[:-1]:
        assert len(shard) % 3 == 0   # no site straddles a boundary


# ---------------------------------------------------------------------------
# Population and mobility plans
# ---------------------------------------------------------------------------

def _tiny_cells():
    return [c.to_dict() for c in build_grid(TINY.grid).cells]


def test_population_plan_is_deterministic_and_respects_off_hours():
    cells = _tiny_cells()
    plan = population_plan(cells, [0, 14], seed=5, users_scale=0.02,
                           max_users_per_cell=3)
    assert plan == population_plan(cells, [0, 14], seed=5,
                                   users_scale=0.02,
                                   max_users_per_cell=3)
    for cell in cells:
        row = plan[cell["cell_id"]]
        assert len(row["offered"]) == 2
        assert all(s <= 3 for s in row["sim"])
        if 0 in cell["off_hours"]:
            assert row["offered"][0] == 0 and row["sim"][0] == 0


def test_walker_plan_is_deterministic_and_in_range():
    cells = _tiny_cells()
    plans = walker_plan(cells, duration_s=2.0, n_walkers=4, seed=11)
    assert plans == walker_plan(cells, duration_s=2.0, n_walkers=4,
                                seed=11)
    ids = {c["cell_id"] for c in cells}
    for plan in plans:
        assert plan["start_cell"] in ids
        times = [t for t, _ in plan["moves"]]
        assert times == sorted(times)
        assert all(0 < t < 2.0 for t in times)
        assert all(cell in ids for _, cell in plan["moves"])
    counts = handovers_into(plans)
    assert sum(counts.values()) == sum(len(p["moves"]) for p in plans)


# ---------------------------------------------------------------------------
# Shard jobs and fingerprints
# ---------------------------------------------------------------------------

def test_shard_jobs_fingerprints_are_stable_and_distinct():
    first = [job.fingerprint() for job in shard_jobs(TINY)]
    second = [job.fingerprint() for job in shard_jobs(TINY)]
    assert first == second
    assert len(set(first)) == len(first)
    reseeded = TINY.with_overrides(seed=99, grid={"seed": 99})
    assert [j.fingerprint() for j in shard_jobs(reseeded)] != first


def test_shard_payload_is_deterministic():
    job = shard_jobs(TINY)[0]
    a = run_shard(job.params)
    b = run_shard(job.params)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["schema"] == "repro.metro/shard/v1"
    assert set(a["cells"]) == {str(c["cell_id"])
                               for c in job.params["cells"]}


def test_shard_batched_matches_scalar():
    busy_job = next(job for job in shard_jobs(TINY)
                    if any(c["busy"] for c in job.params["cells"]))
    assert (shard_fingerprint(busy_job.params, batched=True)
            == shard_fingerprint(busy_job.params, batched=False))


# ---------------------------------------------------------------------------
# Matrix assembly and the metro driver
# ---------------------------------------------------------------------------

def test_run_metro_matrix_is_byte_identical_across_runs():
    a = run_metro(TINY)
    b = run_metro(TINY)
    assert not a.failures
    blob_a = json.dumps(a.matrix, sort_keys=True)
    assert blob_a == json.dumps(b.matrix, sort_keys=True)


def test_matrix_rows_are_sorted_and_complete():
    result = run_metro(TINY)
    matrix = result.matrix
    ids = [row["cell_id"] for row in matrix["cells"]]
    assert ids == sorted(ids)
    assert len(ids) == TINY.grid.n_cells
    assert matrix["missing_shards"] == []
    for row in matrix["cells"]:
        # Idle cells have no fleet but still a defined Jain value.
        if not row["flows"]:
            assert row["jain_index"] == 1.0
        assert len(row["offered_users"]) == len(TINY.hours)
    busy_rows = [row for row in matrix["cells"] if row["flows"]]
    assert busy_rows
    assert matrix["summary"]["mean_jain_index"] is not None
    assert "metro set" in format_summary(matrix)


def test_matrix_reports_missing_shards():
    jobs = shard_jobs(TINY)
    payload = run_shard(jobs[0].params)
    matrix = build_matrix(TINY, build_grid(TINY.grid).to_dict(),
                          [payload])
    assert len(matrix["cells"]) == len(jobs[0].params["cells"])
    assert matrix["shards_present"] == [0]


def test_metro_jobs_run_through_exec_cache(tmp_path):
    jobs_list = shard_jobs(TINY)[:1]
    runner = make_runner(jobs=1, cache_dir=tmp_path)
    fresh = runner.run(jobs_list)
    assert runner.stats.executed == 1
    runner2 = make_runner(jobs=1, cache_dir=tmp_path)
    cached = runner2.run(jobs_list)
    assert runner2.stats.cache_hits == 1
    assert runner2.stats.executed == 0
    assert json.dumps(fresh) == json.dumps(cached)


# ---------------------------------------------------------------------------
# Registry / CLI surface
# ---------------------------------------------------------------------------

def test_registry_has_the_documented_sets():
    sets = metro_scenario_sets()
    assert {"smoke", "metro-240", "downtown-999", "pf-churn"} <= set(sets)
    assert 100 <= sets["smoke"].grid.n_cells
    assert sets["downtown-999"].grid.n_cells <= 1000
    assert sets["pf-churn"].scheduler_policy == "proportional_fair"


def test_resolve_set_rejects_unknown_names():
    assert resolve_set("smoke").name == "smoke"
    assert resolve_set(TINY) is TINY
    with pytest.raises(ValueError, match="unknown metro set"):
        resolve_set("no-such-set")


def test_cli_parses_metro_options():
    from repro.cli import build_parser
    args = build_parser().parse_args(
        ["metro", "--smoke", "--hour-s", "0.2", "--jobs", "2",
         "--cache-dir", "/tmp/x", "--resume", "--out", "m.json"])
    assert args.smoke and args.hour_s == 0.2 and args.resume
