"""Unit tests for TCP Vegas."""

import pytest

from repro.baselines.base import AckContext
from repro.baselines.vegas import ALPHA, BETA, Vegas
from repro.net.packet import Packet


def _ack(now_us, rtt_us=40_000):
    return AckContext(ack=Packet(1, 0, is_ack=True), now_us=now_us,
                      rtt_us=rtt_us, delivery_rate_bps=10e6,
                      newly_acked_bits=12_000, inflight_bits=120_000,
                      app_limited=False)


def test_slow_start_doubles_until_queueing():
    cc = Vegas()
    start = cc.cwnd
    t = 0
    for _ in range(4):  # four rounds at constant RTT: no queueing
        t += 45_000
        cc.on_ack(_ack(t))
    assert cc.cwnd >= start * 4
    assert cc._in_slow_start


def test_slow_start_ends_when_diff_exceeds_alpha():
    cc = Vegas()
    t = 0
    for _ in range(3):
        t += 45_000
        cc.on_ack(_ack(t, rtt_us=40_000))
    grown = cc.cwnd
    # RTT inflates: diff = cwnd*(1 - base/rtt) packets > alpha.
    for _ in range(3):
        t += 65_000
        cc.on_ack(_ack(t, rtt_us=60_000))
    assert not cc._in_slow_start
    assert cc.cwnd <= grown


def test_congestion_avoidance_additive():
    cc = Vegas()
    cc._in_slow_start = False
    cc._srtt_us = 40_000  # pre-warm so each round gates at one RTT
    cc.cwnd = 20.0
    t = 0
    for _ in range(5):  # constant RTT -> diff 0 < alpha -> +1 per RTT
        t += 45_000
        cc.on_ack(_ack(t))
    assert cc.cwnd == 25.0


def test_backs_off_above_beta():
    cc = Vegas()
    cc._in_slow_start = False
    cc.cwnd = 40.0
    t = 0
    cc.on_ack(_ack(t + 45_000, rtt_us=40_000))  # establish base RTT
    t += 45_000
    for _ in range(5):
        t += 65_000
        # queueing delay of 20 ms at cwnd 40: diff = 40*20/60 = 13 > β.
        cc.on_ack(_ack(t, rtt_us=60_000))
    assert cc.cwnd < 40.0


def test_loss_reduces_window():
    cc = Vegas()
    cc.cwnd = 40.0
    cc.on_loss(0, 12_000, 0)
    assert cc.cwnd == 30.0


def test_timeout_resets():
    cc = Vegas()
    cc.cwnd = 40.0
    cc.on_timeout(0)
    assert cc.cwnd == 2.0


def test_registered_in_harness():
    from repro.harness import make_cc
    assert isinstance(make_cc("vegas"), Vegas)


def test_thresholds_sane():
    assert 0 < ALPHA < BETA
