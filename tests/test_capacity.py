"""Tests for the Eqn. 1-4 capacity estimator."""

import pytest

from repro.monitor.capacity import CellCapacityEstimator
from repro.phy.dci import DciMessage, SubframeRecord

OWN = 100


def _record(subframe, allocations, cell=0, total=100):
    rec = SubframeRecord(subframe, cell, total)
    for rnti, prbs, bpp in allocations:
        rec.messages.append(DciMessage(subframe, cell, rnti, prbs, 12, 2,
                                       tbs_bits=prbs * bpp))
    return rec


def _estimator(total=100):
    return CellCapacityEstimator(cell_id=0, total_prbs=total, own_rnti=OWN)


def test_empty_estimator_returns_zero():
    est = _estimator().estimate(40)
    assert est.physical_capacity == 0.0
    assert est.users == 1


def test_sole_user_gets_own_plus_all_idle():
    # Eqn. 3 with N=1: Cp = Rw·(Pa + Pidle).
    est = _estimator()
    for sf in range(40):
        est.update(_record(sf, [(OWN, 60, 1000)]), own_rate_hint=1000,
                   ber_hint=1e-6)
    out = est.estimate(40)
    assert out.own_allocation == pytest.approx(60.0)
    assert out.idle == pytest.approx(40.0)
    assert out.users == 1
    assert out.physical_capacity == pytest.approx(1000 * (60 + 40))
    assert out.fair_share == pytest.approx(1000 * 100 / 1)


def test_competitor_splits_idle_share():
    # Eqn. 3 with N=2: Cp = Rw·(Pa + Pidle/2).
    est = _estimator()
    for sf in range(40):
        est.update(_record(sf, [(OWN, 40, 1000), (7, 40, 800)]),
                   own_rate_hint=1000, ber_hint=1e-6)
    out = est.estimate(40)
    assert out.users == 2
    assert out.physical_capacity == pytest.approx(1000 * (40 + 20 / 2))
    assert out.fair_share == pytest.approx(1000 * 100 / 2)


def test_control_users_count_for_idle_not_for_n():
    # Eqn. 4 counts every user's PRBs; N uses the filtered count.
    est = _estimator()
    for sf in range(40):
        allocations = [(OWN, 50, 1000)]
        if sf == 10:
            allocations.append((9_000, 4, 100))  # one-subframe burst
        est.update(_record(sf, allocations), own_rate_hint=1000,
                   ber_hint=1e-6)
    out = est.estimate(40)
    assert out.users == 1  # burst filtered out of N
    assert out.idle == pytest.approx((40 * 50 - 4) / 40)


def test_own_rate_from_dci_overrides_hint():
    est = _estimator()
    for sf in range(10):
        est.update(_record(sf, [(OWN, 10, 1200)]), own_rate_hint=500,
                   ber_hint=1e-6)
    out = est.estimate(10)
    # Rw from the decoded DCI (1200), not the stale hint (500).
    assert out.physical_capacity == pytest.approx(1200 * 100, rel=0.01)


def test_hint_used_when_not_scheduled():
    est = _estimator()
    for sf in range(10):
        est.update(_record(sf, []), own_rate_hint=700, ber_hint=1e-6)
    out = est.estimate(10)
    assert out.physical_capacity == pytest.approx(700 * 100)


def test_window_limits_averaging():
    est = _estimator()
    for sf in range(50):
        prbs = 20 if sf < 40 else 80
        est.update(_record(sf, [(OWN, prbs, 1000)]), own_rate_hint=1000,
                   ber_hint=1e-6)
    # Short window sees only the recent 80-PRB regime.
    assert est.estimate(10).own_allocation == pytest.approx(80.0)
    assert est.estimate(50).own_allocation < 40.0


def test_last_own_grant_tracking():
    est = _estimator()
    est.update(_record(0, [(OWN, 10, 1000)]), 1000, 1e-6)
    est.update(_record(1, []), 1000, 1e-6)
    assert est.last_own_grant_subframe == 0
    assert est.last_subframe == 1


def test_wrong_cell_rejected():
    est = _estimator()
    with pytest.raises(ValueError):
        est.update(_record(0, [], cell=5), 1000, 1e-6)


def test_window_validation():
    with pytest.raises(ValueError):
        _estimator().estimate(0)
