"""Tests for the Eqn. 5 physical→transport rate translation."""

import pytest
from hypothesis import given, strategies as st

from repro.monitor.translation import (
    PROTOCOL_OVERHEAD,
    TranslationTable,
    physical_from_transport,
    transport_from_physical,
)
from repro.cell.queues import PROTOCOL_OVERHEAD as CELL_OVERHEAD


def test_overhead_constant_matches_cell_model():
    # The monitor's γ must equal the overhead the MAC actually imposes.
    assert PROTOCOL_OVERHEAD == CELL_OVERHEAD == pytest.approx(0.068)


def test_zero_capacity():
    assert transport_from_physical(0.0, 1e-6) == 0.0


def test_no_errors_leaves_only_protocol_overhead():
    ct = transport_from_physical(100_000, ber=0.0)
    assert ct == pytest.approx(100_000 * (1 - PROTOCOL_OVERHEAD), rel=1e-6)


def test_roundtrip_solves_eqn5():
    # Cp = Ct + Ct·TBLER(L=Ct) + γ·Cp must hold at the solution.
    cp, ber = 120_000.0, 2e-6
    ct = transport_from_physical(cp, ber)
    assert physical_from_transport(ct, ber) == pytest.approx(cp, rel=1e-3)


def test_higher_ber_means_lower_goodput():
    rates = [transport_from_physical(100_000, b)
             for b in (1e-7, 1e-6, 5e-6, 2e-5)]
    assert rates == sorted(rates, reverse=True)


def test_validation():
    with pytest.raises(ValueError):
        transport_from_physical(-1, 1e-6)
    with pytest.raises(ValueError):
        transport_from_physical(100, 1e-6, overhead=1.0)
    with pytest.raises(ValueError):
        physical_from_transport(-5, 1e-6)


@given(st.floats(min_value=0, max_value=300_000),
       st.floats(min_value=1e-8, max_value=1e-4))
def test_goodput_below_capacity(cp, ber):
    ct = transport_from_physical(cp, ber)
    assert 0.0 <= ct <= cp


@given(st.floats(min_value=1_000, max_value=300_000),
       st.floats(min_value=1e-8, max_value=1e-5))
def test_monotonic_in_capacity(cp, ber):
    assert (transport_from_physical(2 * cp, ber)
            >= transport_from_physical(cp, ber))


def test_table_caches():
    table = TranslationTable()
    a = table.transport_rate(123_456, 1e-6)
    b = table.transport_rate(123_789, 1.05e-6)  # same quantization bucket
    assert a == b
    assert table.hits == 1
    assert table.misses == 1
    assert len(table) == 1


def test_table_close_to_exact():
    table = TranslationTable()
    approx = table.transport_rate(150_000, 1e-6)
    exact = transport_from_physical(150_000, 1e-6)
    assert approx == pytest.approx(exact, rel=0.02)


def test_table_zero_ber():
    table = TranslationTable()
    assert table.transport_rate(50_000, 0.0) == pytest.approx(
        50_000 * (1 - PROTOCOL_OVERHEAD), rel=0.03)
