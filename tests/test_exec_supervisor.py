"""Supervision layer: failure isolation, deadlines, backoff, budget.

Simulations here are deliberately tiny — the subject under test is the
execution supervision, not the simulator.
"""

import concurrent.futures
import signal
import time

import pytest

from repro.exec import (
    BackoffPolicy,
    FailureBudgetExceeded,
    Job,
    JobFailure,
    ParallelRunner,
    ResultStore,
    SignalDrain,
    is_failure,
)
from repro.harness import Scenario
from repro.phy.carrier import CarrierConfig


def tiny_scenario(seed=7, **overrides):
    base = dict(name=f"sup-{seed}", carriers=[CarrierConfig(0, 10.0)],
                aggregated_cells=1, mean_sinr_db=14.0,
                duration_s=1.0, seed=seed)
    base.update(overrides)
    return Scenario(**base)


def pool_works() -> bool:
    try:
        with concurrent.futures.ProcessPoolExecutor(1) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


# ---------------------------------------------------------------------
# JobFailure: the structured record a failed job leaves behind.
def test_job_failure_roundtrip():
    try:
        raise ValueError("boom")
    except ValueError as exc:
        failure = JobFailure.from_exception(
            "loc/pbe", "ab" * 32, "job-error", exc, attempts=2,
            wall_s=1.5)
    assert failure.exc_type == "ValueError"
    assert failure.message == "boom"
    assert "Traceback" in failure.traceback
    rebuilt = JobFailure.from_dict(failure.to_dict())
    assert rebuilt == failure
    assert "job-error" in failure.summary()
    assert "2 attempt(s)" in failure.summary()


def test_job_failure_rejects_unknown_kind():
    with pytest.raises(ValueError):
        JobFailure.from_exception("x", "ab" * 32, "cosmic-ray",
                                  RuntimeError("no"))


# ---------------------------------------------------------------------
# Regression (satellite): one poisoned job out of 8 must not abort the
# sweep — 7 payloads come back plus 1 structured JobFailure.
def test_one_poisoned_job_of_eight_keeps_the_other_seven(tmp_path):
    if not pool_works():
        pytest.skip("no working process pool on this platform")
    store = ResultStore(tmp_path)
    runner = ParallelRunner(jobs=4, store=store)
    jobs = [Job(tiny_scenario(seed=s), "bbr") for s in range(1, 8)]
    jobs.insert(3, Job(tiny_scenario(seed=99), "warp-drive"))
    results = runner.run(jobs)

    failures = [r for r in results if is_failure(r)]
    payloads = [r for r in results if not is_failure(r)]
    assert len(payloads) == 7 and len(failures) == 1
    assert is_failure(results[3])  # failure sits in its own slot
    assert failures[0].kind == "job-error"
    assert failures[0].exc_type == "ValueError"
    assert runner.stats.executed == 7
    assert runner.stats.failed == 1
    # every completed payload persisted despite the poison
    assert len(store) == 7


def test_failed_jobs_are_never_cached(tmp_path):
    store = ResultStore(tmp_path)
    runner = ParallelRunner(store=store)
    [failure] = runner.run([Job(tiny_scenario(), "warp-drive")])
    assert is_failure(failure)
    assert len(store) == 0
    # a re-run re-attempts the failure rather than recalling it
    again = ParallelRunner(store=store)
    [failure2] = again.run([Job(tiny_scenario(), "warp-drive")])
    assert is_failure(failure2)
    assert again.stats.cache_hits == 0


# ---------------------------------------------------------------------
# Concurrent deadlines: k slow jobs must all be detected within one
# timeout, not k stacked timeouts.
def test_concurrent_deadline_detection_is_o_timeout():
    if not pool_works():
        pytest.skip("no working process pool on this platform")
    k, timeout_s = 4, 0.3
    runner = ParallelRunner(jobs=k, timeout_s=timeout_s, retries=0)
    jobs = [Job(tiny_scenario(seed=s, duration_s=30.0), "bbr")
            for s in range(1, k + 1)]
    t0 = time.monotonic()
    results = runner.run(jobs)
    wall = time.monotonic() - t0
    assert all(is_failure(r) and r.kind == "timeout" for r in results)
    # generous pool-startup allowance, but nowhere near k stacked
    # timeouts of the old serial collection loop
    assert wall < k * timeout_s + 2.0


def test_queue_wait_does_not_count_against_the_deadline():
    # Regression: with pending > workers all jobs were submitted at
    # once and the deadline clock started at submission, so jobs that
    # merely *queued* behind a full pool were popped as spurious
    # timeouts.  Queue wait must not consume attempts or fail jobs.
    if not pool_works():
        pytest.skip("no working process pool on this platform")
    from repro.exec.worker import execute_job
    probe = Job(tiny_scenario(seed=50, duration_s=4.0), "bbr")
    t0 = time.monotonic()
    execute_job(probe)
    per_job = time.monotonic() - t0
    # one worker, six jobs: the last queues ~5 job-lengths, far past a
    # deadline that still gives an *executing* job 2.5x headroom
    timeout_s = max(0.5, 2.5 * per_job)
    runner = ParallelRunner(jobs=1, timeout_s=timeout_s, retries=0)
    jobs = [Job(tiny_scenario(seed=s, duration_s=4.0), "bbr")
            for s in range(51, 57)]
    results = runner.run(jobs)
    assert not any(is_failure(r) for r in results)
    assert runner.stats.executed == 6
    assert runner.stats.failed == 0
    assert runner.stats.retries == 0


def test_strict_timeout_does_not_join_a_hung_worker():
    # Regression: when _collect raised (strict JobExecutionError) its
    # hung-worker flag was lost and shutdown(wait=True) joined the
    # still-running worker — wedging the sweep for the full job length.
    if not pool_works():
        pytest.skip("no working process pool on this platform")
    from repro.exec.runner import JobExecutionError
    runner = ParallelRunner(jobs=2, timeout_s=0.3, retries=0,
                            strict=True)
    jobs = [Job(tiny_scenario(seed=s, duration_s=30.0), "bbr")
            for s in (60, 61)]
    t0 = time.monotonic()
    with pytest.raises(JobExecutionError):
        runner.run(jobs)
    # nowhere near the ~4s (duration 30) the hung join would cost
    assert time.monotonic() - t0 < 3.0
    assert runner.stats.wall_s > 0  # finalized despite the abort


# ---------------------------------------------------------------------
# Backoff: exponential, capped, deterministically jittered.
def test_backoff_is_deterministic_and_exponential():
    policy = BackoffPolicy(base_s=1.0, factor=2.0, max_s=8.0)
    fp = "ab" * 32
    first = [policy.delay_s(fp, n) for n in (1, 2, 3, 4, 5)]
    second = [policy.delay_s(fp, n) for n in (1, 2, 3, 4, 5)]
    assert first == second  # same job, same schedule, every time
    # jitter scales within [0.5, 1.0) of the raw exponential value
    for attempt, delay in zip((1, 2, 3, 4), first):
        raw = min(8.0, 1.0 * 2.0 ** (attempt - 1))
        assert 0.5 * raw <= delay < raw
    assert first[4] <= 8.0  # capped
    # distinct jobs de-correlate
    assert policy.delay_s("cd" * 32, 1) != policy.delay_s(fp, 1)
    with pytest.raises(ValueError):
        policy.delay_s(fp, 0)


def test_retry_backoff_is_accounted(monkeypatch):
    if not pool_works():
        pytest.skip("no working process pool on this platform")
    runner = ParallelRunner(jobs=2, timeout_s=0.05, retries=1,
                            backoff=BackoffPolicy(base_s=0.05,
                                                  max_s=0.1))
    results = runner.run(
        [Job(tiny_scenario(seed=s, duration_s=30.0), "bbr")
         for s in (1, 2)])
    assert all(is_failure(r) for r in results)
    assert runner.stats.retries == 2
    assert runner.stats.backoff_s > 0


# ---------------------------------------------------------------------
# Failure budget: the circuit breaker aborts a degenerating sweep.
def test_failure_budget_trips():
    runner = ParallelRunner(failure_budget=0.25)
    jobs = [Job(tiny_scenario(seed=1), "bbr"),
            Job(tiny_scenario(seed=2), "nope-a"),
            Job(tiny_scenario(seed=3), "nope-b"),
            Job(tiny_scenario(seed=4), "bbr")]
    with pytest.raises(FailureBudgetExceeded) as err:
        runner.run(jobs)
    assert err.value.failed == 2
    assert err.value.total == 4
    assert runner.stats.failed == 2


def test_failure_budget_of_one_never_trips():
    runner = ParallelRunner(failure_budget=1.0)
    results = runner.run([Job(tiny_scenario(seed=s), "nope")
                          for s in (1, 2)])
    assert all(is_failure(r) for r in results)


# ---------------------------------------------------------------------
# Stats surface the degraded-run counters.
def test_stats_format_reports_failures_and_quarantine():
    runner = ParallelRunner()
    runner.run([Job(tiny_scenario(seed=1), "bbr"),
                Job(tiny_scenario(seed=2), "nope")])
    line = runner.stats.format()
    assert "1 failed" in line
    assert "quarantined" in line
    assert "backoff" in line


def test_failed_event_emitted():
    events = []
    runner = ParallelRunner(progress=events.append)
    runner.run([Job(tiny_scenario(), "nope")])
    assert [e.kind for e in events] == ["failed"]
    assert "job-error" in events[0].detail


# ---------------------------------------------------------------------
# SignalDrain: first signal requests a stop, second hard-aborts.
def test_signal_drain_two_stage():
    with SignalDrain() as drain:
        assert not drain.stop_requested
        drain._handle(signal.SIGINT, None)
        assert drain.stop_requested
        with pytest.raises(KeyboardInterrupt):
            drain._handle(signal.SIGINT, None)
    # handlers restored on exit
    assert signal.getsignal(signal.SIGINT) is not drain._handle


def test_signal_drain_restores_handlers():
    before = signal.getsignal(signal.SIGINT)
    with SignalDrain():
        assert signal.getsignal(signal.SIGINT) != before
    assert signal.getsignal(signal.SIGINT) == before


def test_disabled_drain_leaves_handlers_alone():
    before = signal.getsignal(signal.SIGINT)
    with SignalDrain(enabled=False):
        assert signal.getsignal(signal.SIGINT) == before


def test_inline_run_stops_at_drain_request(tmp_path):
    store = ResultStore(tmp_path)
    runner = ParallelRunner(store=store)
    jobs = [Job(tiny_scenario(seed=s), "bbr") for s in (1, 2, 3)]

    calls = []
    original = runner._complete

    def complete_then_interrupt(*args, **kwargs):
        original(*args, **kwargs)
        calls.append(1)
        # simulate Ctrl-C landing after the first job persisted
        signal.raise_signal(signal.SIGINT)

    runner._complete = complete_then_interrupt
    from repro.exec import SweepInterrupted
    with pytest.raises(SweepInterrupted) as err:
        runner.run(jobs)
    assert len(calls) == 1  # no further job started
    assert err.value.done == 1
    assert err.value.total == 3
    assert len(store) == 1  # the finished payload persisted
