"""Columnar congestion-control chain: scalar-vs-block CC equality.

PR 10 gives every scheme a true :meth:`on_ack_block` — the §4.1 PBE
loop, BBR's filter/state machine, CUBIC's window law and Copa's
velocity control all process one grant cycle's ACKs with their filter
state hoisted into locals.  The contract is *decision* equality with
the scalar per-ACK reference: the controller must see the identical
callback stream (every ``on_ack`` context and every ``on_loss``, in
order) and end in the identical observable state.  Raw filter deques
are allowed to differ by dominated same-timestamp entries (the block
paths insert only the block extreme — future-equivalent by the
monotonic-deque argument), so filters are compared through
``(window_us, get())``.

The matrix runs every scheme against clean, lossy, reordered and
duplicate-ACK streams; a scripted PBE client drives the sender through
all five §4.1 states (including the feedback watchdog's FALLBACK and
its resync).  A final test pins the batched transport engine under an
ACK-impairing :class:`~repro.faults.pipe.ImpairedPipe` — the PR 9
demotion rule is gone, so the impaired uplink must stay batched *and*
stay byte-identical to the scalar engine.

Also here: the FlowStats packed-column (``array('q')``) equivalence
check against a plain-list reference implementation.
"""

from __future__ import annotations

from array import array

import pytest

from repro.baselines.base import AckingReceiver, Sender
from repro.baselines.bbr import Bbr
from repro.baselines.copa import Copa
from repro.baselines.cubic import Cubic
from repro.baselines.windowed import _WindowedExtreme
from repro.core.feedback import PbeFeedback
from repro.core.sender import PbeSender
from repro.harness import Experiment, FlowSpec, Scenario
from repro.harness.fingerprint import run_fingerprint
from repro.net.flow import FlowStats
from repro.net.link import BatchingPipe, DelayPipe, Link
from repro.net.packet import Packet
from repro.net.sim import Simulator
from repro.net.units import us_from_seconds

DURATION_S = 0.6


# ---------------------------------------------------------------------------
# CC instrumentation: record the exact callback stream the scheme sees
# ---------------------------------------------------------------------------

def _ctx_row(ctx):
    return (ctx.now_us, ctx.ack.acked_seq, ctx.rtt_us,
            ctx.delivery_rate_bps, ctx.newly_acked_bits,
            ctx.inflight_bits, ctx.app_limited, ctx.srtt_us)


def _instrument(cc):
    """Log every on_ack/on_ack_block/on_loss/on_timeout the transport
    delivers, flattening blocks so scalar and batched logs compare
    elementwise.  Internal fallbacks (a block path re-dispatching to
    ``self.on_ack``) must not double-log, hence the depth guard."""
    rows = []
    depth = [0]
    real_ack = cc.on_ack
    real_block = cc.on_ack_block
    real_loss = cc.on_loss
    real_timeout = cc.on_timeout

    def on_ack(ctx):
        if not depth[0]:
            rows.append(("ack",) + _ctx_row(ctx))
        real_ack(ctx)

    def on_ack_block(contexts):
        for ctx in contexts:
            rows.append(("ack",) + _ctx_row(ctx))
        depth[0] += 1
        try:
            real_block(contexts)
        finally:
            depth[0] -= 1

    def on_loss(now_us, lost_bits, inflight_bits):
        rows.append(("loss", now_us, lost_bits, inflight_bits))
        real_loss(now_us, lost_bits, inflight_bits)

    def on_timeout(now_us):
        rows.append(("timeout", now_us))
        real_timeout(now_us)

    cc.on_ack = on_ack
    cc.on_ack_block = on_ack_block
    cc.on_loss = on_loss
    cc.on_timeout = on_timeout
    return rows


def _cc_state(cc):
    """Observable controller state: every attribute, with windowed
    filters reduced to ``(window_us, get())`` and the embedded BBR
    recursed into."""
    out = {}
    for key, value in vars(cc).items():
        if isinstance(value, _WindowedExtreme):
            out[key] = ("filter", value.window_us, value.get())
        elif isinstance(value, (Bbr, PbeSender)):
            out[key] = _cc_state(value)
        elif isinstance(value, list):
            out[key] = tuple(value)
        elif callable(value):
            continue  # the instrumentation wrappers themselves
        else:
            out[key] = value
    return out


# ---------------------------------------------------------------------------
# Deterministic ACK-stream impairments (no RNG: both engines must see
# the identical packet sequence)
# ---------------------------------------------------------------------------

class SeqDropper:
    """Drop every data packet whose seq hits a fixed residue class."""

    def __init__(self, sink, modulus=29, residue=13):
        self.sink = sink
        self.modulus = modulus
        self.residue = residue

    def receive(self, packet):
        if not packet.is_ack and packet.seq % self.modulus == self.residue:
            return
        self.sink.receive(packet)


class AckDuplicator:
    """Deliver every Nth ACK twice (spurious duplicate at the sender)."""

    def __init__(self, sink, every=17):
        self.sink = sink
        self.every = every
        self.count = 0

    def receive(self, packet):
        self.sink.receive(packet)
        self.count += 1
        if self.count % self.every == 0:
            self.sink.receive(packet)


class PairSwapper:
    """Hold every Nth ACK and release it after its successor."""

    def __init__(self, sink, every=13):
        self.sink = sink
        self.every = every
        self.count = 0
        self.held = None

    def receive(self, packet):
        if self.held is not None:
            held, self.held = self.held, None
            self.sink.receive(packet)
            self.sink.receive(held)
            return
        self.count += 1
        if self.count % self.every == 0:
            self.held = packet
        else:
            self.sink.receive(packet)


class ScriptedPbeClient(AckingReceiver):
    """PBE feedback on a fixed clock schedule (no monitor needed).

    Six 50 ms phases walk the sender through every §4.1 transition:
    fresh wireless reports, a carrier-activation restart, an Internet
    bottleneck (DRAIN → INTERNET and back), then 150 ms without fresh
    feedback (stale / lost / stale) to trip the watchdog into FALLBACK
    before phase 0 resyncs it.
    """

    def feedback_for(self, packet):
        seq = packet.seq
        phase = (self.sim.now // 50_000) % 6
        if phase == 4 and seq % 3:
            return None  # feedback lost in the network
        stale = phase in (3, 4, 5)
        return PbeFeedback.from_rates(
            target_rate_bps=8e6 + (seq % 7) * 1e6,
            fair_rate_bps=6e6 + (seq % 5) * 1e6,
            internet_bottleneck=(phase == 2),
            carrier_activated=(phase == 1 and seq % 37 == 0),
            stale=stale,
        )


# ---------------------------------------------------------------------------
# The matrix
# ---------------------------------------------------------------------------

_SCHEMES = {
    "pbe": lambda: PbeSender(initial_rate_bps=6e6),
    "bbr": lambda: Bbr(initial_rate_bps=6e6),
    "cubic": Cubic,
    "copa": Copa,
}

_STREAMS = ("clean", "lossy", "reordered", "dup")


def _run(scheme, stream, batched):
    sim = Simulator()
    cc = _SCHEMES[scheme]()
    rows = _instrument(cc)
    sender = Sender(sim, flow_id=1, cc=cc, egress=None)
    uplink = BatchingPipe(sim, sender, delay_us=2_000,
                          batch_interval_us=5_000, batched=batched)
    ack_path = uplink
    if stream == "dup":
        ack_path = AckDuplicator(uplink)
    elif stream == "reordered":
        ack_path = PairSwapper(uplink)
    client_cls = ScriptedPbeClient if scheme == "pbe" else AckingReceiver
    receiver = client_cls(sim, 1, ack_path)
    last_mile = DelayPipe(sim, receiver, delay_us=2_000)
    # A 16 Mbit/s bottleneck with a shallow queue: rate-based schemes
    # converge (instead of racing an infinite-bandwidth pipe) and
    # loss-based ones see real queue drops.
    data_path = Link(sim, last_mile, rate_bps=16e6, delay_us=4_000,
                     queue_packets=40)
    if stream == "lossy":
        data_path = SeqDropper(data_path)
    sender.egress = data_path
    sender.start()
    end = us_from_seconds(DURATION_S)
    sim.run(until_us=end)
    decisions = (cc.pacing_rate_bps(end), cc.cwnd_bits(end))
    return rows, _cc_state(cc), decisions, sender


@pytest.mark.parametrize("stream", _STREAMS)
@pytest.mark.parametrize("scheme", sorted(_SCHEMES))
def test_block_path_matches_scalar_callback_log(scheme, stream):
    b_rows, b_state, b_decisions, b_sender = _run(scheme, stream, True)
    s_rows, s_state, s_decisions, s_sender = _run(scheme, stream, False)
    assert len(b_rows) > 50  # the stream actually exercised the CC
    assert b_rows == s_rows
    assert b_state == s_state
    assert b_decisions == s_decisions
    assert (b_sender.acked_packets, b_sender.lost_packets,
            b_sender.timeouts) == (s_sender.acked_packets,
                                   s_sender.lost_packets,
                                   s_sender.timeouts)


def test_lossy_and_dup_streams_reach_the_loss_and_spurious_paths():
    rows, _, _, sender = _run("cubic", "lossy", True)
    assert any(row[0] == "loss" for row in rows)
    assert sender.lost_packets > 0
    rows, _, _, sender = _run("cubic", "dup", True)
    acked = [row[2] for row in rows if row[0] == "ack"]
    assert len(acked) == sender.acked_packets  # spurious dups filtered


def test_scripted_pbe_client_covers_all_sender_states():
    _, state, _, _ = _run("pbe", "clean", True)
    visited = {name for _, name in state["state_changes"]}
    assert {"wireless", "drain", "internet", "fallback"} <= visited


# ---------------------------------------------------------------------------
# Batched transport under an ACK-impairing pipe (demotion rule removed)
# ---------------------------------------------------------------------------

ACK_FAULTS = {"seed": 5, "ack_loss_rate": 0.03, "ack_dup_rate": 0.02,
              "ack_reorder_rate": 0.02}


def _faulted_scenario():
    return Scenario(name="ccb-faulted", aggregated_cells=2,
                    mean_sinr_db=18.0, duration_s=DURATION_S, seed=77,
                    busy=True, background_users=2)


def test_impaired_uplink_runs_batched_and_matches_scalar():
    experiment = Experiment(_faulted_scenario(), batched=True)
    handle = experiment.add_flow(FlowSpec(scheme="pbe",
                                          faults=ACK_FAULTS))
    assert handle.uplink.batched is True

    batched = run_fingerprint(_faulted_scenario(),
                              [FlowSpec(scheme="pbe", faults=ACK_FAULTS)],
                              batched=True)
    scalar = run_fingerprint(_faulted_scenario(),
                             [FlowSpec(scheme="pbe", faults=ACK_FAULTS)],
                             batched=False)
    assert batched == scalar


# ---------------------------------------------------------------------------
# The cc_block microbench and the perf --only selector
# ---------------------------------------------------------------------------

def test_perf_only_selector_emits_a_partial_document():
    from repro.perf.bench import (SCHEMA, bench_names, compare_benchmarks,
                                  run_benchmarks)
    assert "cc_block" in bench_names()
    doc = run_benchmarks(smoke=True, only=["cc_block"])
    assert doc["schema"] == SCHEMA
    assert set(doc["benches"]) == {"cc_block"}
    bench = doc["benches"]["cc_block"]
    assert set(bench["schemes"]) == {"pbe", "bbr", "cubic", "copa"}
    assert bench["speedup"] > 0
    # The partial document compares cleanly against itself.
    lines, regressions = compare_benchmarks(doc, doc)
    assert not regressions
    with pytest.raises(ValueError, match="unknown benches"):
        run_benchmarks(smoke=True, only=["no_such_bench"])


# ---------------------------------------------------------------------------
# FlowStats packed columns vs the list reference
# ---------------------------------------------------------------------------

def test_flow_stats_columns_are_packed_arrays():
    stats = FlowStats(1)
    assert isinstance(stats.arrival_us, array)
    assert stats.arrival_us.typecode == "q"
    assert stats.size_bits.typecode == "q"
    assert stats.delay_us.typecode == "q"


def test_flow_stats_matches_list_reference():
    class ListStats(FlowStats):
        def __init__(self, flow_id):
            super().__init__(flow_id)
            self.arrival_us = []
            self.size_bits = []
            self.delay_us = []

    packed, ref = FlowStats(1), ListStats(1)
    records = [(i * 997, 12_000 + (i % 3) * 8, 15_000 + (i * 37) % 9_000)
               for i in range(500)]
    for row in records:
        packed.record(*row)
        ref.record(*row)
    assert list(packed.arrival_us) == ref.arrival_us
    assert list(packed.size_bits) == ref.size_bits
    assert list(packed.delay_us) == ref.delay_us
    assert packed.packets == ref.packets
    assert packed.total_bits == ref.total_bits
    assert packed.average_throughput_bps() == ref.average_throughput_bps()
    assert packed.delays_ms() == ref.delays_ms()
    assert tuple(packed.arrival_us) == tuple(ref.arrival_us)  # digest view
