"""Regression tests for the hot-path bugfix PR.

Each test here fails on the pre-PR code:

* scheduler idle-PRB leak — remainder PRBs freed by demand caps or by
  float truncation of the weighted shares were dropped instead of
  redistributed;
* PF state leak — ``ProportionalFairState.record`` never evicted
  departed users, so day-long churny runs grew without bound;
* event-heap bloat — the simulator lazily cancelled events but never
  compacted, and ``pending_events`` counted corpses as pending;

plus exact-equivalence suites for the rolling-sum rewrites (capacity
estimator, CA manager): the optimized implementations must be
*bit-for-bit* identical to the naive re-scan they replaced, because
their outputs feed simulation decisions and determinism is a repo
invariant.
"""

import random
from collections import deque

from repro.cell.ca_manager import CaPolicy, CarrierAggregationManager
from repro.cell.scheduler import (
    DemandEntry,
    ProportionalFairState,
    allocate_prbs,
)
from repro.monitor.capacity import CellCapacityEstimator
from repro.net.sim import Simulator
from repro.phy.carrier import AggregationState
from repro.phy.dci import DciMessage, SubframeRecord


# ----------------------------------------------------------------------
# Scheduler: idle-PRB leak
# ----------------------------------------------------------------------
def _total(grants):
    return sum(grants.values())


def test_scheduler_redistributes_truncation_leak():
    """Huge PRB budgets leaked grants to float truncation pre-PR.

    At ``available >= ~2**53 / n`` the float division inside the
    remainder round truncates enough that ``leftover`` exceeds the
    user count, and the rotating +1 extras could not hand all of it
    out.  The redistribution loop must allocate every PRB whenever
    demand exceeds supply.
    """
    for available in (10**17, 10**18):
        demands = [DemandEntry(rnti=i, demand_bits=10**19,
                               bits_per_prb=1) for i in range(3)]
        grants = allocate_prbs(available, demands, rotation=0)
        assert _total(grants) == available, (
            f"leaked {available - _total(grants)} PRBs at {available}")


def test_scheduler_capped_users_free_prbs_for_backlogged():
    """PRBs a capped user does not need go to backlogged users."""
    demands = [
        DemandEntry(rnti=1, demand_bits=100, bits_per_prb=100),   # 1 PRB
        DemandEntry(rnti=2, demand_bits=10**9, bits_per_prb=100),
        DemandEntry(rnti=3, demand_bits=10**9, bits_per_prb=100),
    ]
    grants = allocate_prbs(99, demands, rotation=5)
    assert grants[1] == 1
    assert _total(grants) == 99  # nothing idles while users backlog


def _brute_force_equal(available, demands):
    """Reference allocator: hand out one PRB at a time, round-robin
    over users still below demand.  Shares differ from water-filling
    by at most rounding, but the *totals* invariant is exact."""
    need = {d.rnti: d.demand_prbs for d in demands if d.demand_prbs > 0}
    got = {rnti: 0 for rnti in need}
    order = sorted(need)
    while available > 0:
        live = [r for r in order if got[r] < need[r]]
        if not live:
            break
        for rnti in live:
            if available == 0:
                break
            got[rnti] += 1
            available -= 1
    return {r: g for r, g in got.items() if g > 0}


def test_scheduler_totals_match_brute_force():
    """Property: total granted == min(supply, total demand), per-user
    grant <= demand, across random capped/backlogged mixes."""
    rng = random.Random(20260806)
    for trial in range(300):
        n = rng.randint(1, 10)
        demands = [
            DemandEntry(rnti=i,
                        demand_bits=rng.choice(
                            [0, rng.randint(1, 5_000),
                             rng.randint(10**6, 10**8)]),
                        bits_per_prb=rng.randint(1, 2_000))
            for i in range(n)]
        available = rng.randint(0, 300)
        grants = allocate_prbs(available, demands,
                               rotation=rng.randint(0, 10_000))
        reference = _brute_force_equal(available, demands)
        assert _total(grants) == _total(reference)
        by_rnti = {d.rnti: d.demand_prbs for d in demands}
        for rnti, prbs in grants.items():
            assert 0 < prbs <= by_rnti[rnti]


def test_scheduler_leak_free_under_pf_weights():
    """The redistribution loop also closes the gap for weighted
    policies, where truncation losses were far easier to hit."""
    pf = ProportionalFairState(time_constant_subframes=50)
    pf.record({1: 10**6, 2: 10}, known_rntis={1, 2, 3})
    demands = [DemandEntry(rnti=i, demand_bits=10**9, bits_per_prb=500)
               for i in (1, 2, 3)]
    for available in (7, 100, 9973):
        grants = allocate_prbs(available, demands, rotation=3,
                               policy="proportional_fair", pf_state=pf)
        assert _total(grants) == available


# ----------------------------------------------------------------------
# Proportional-fair state eviction
# ----------------------------------------------------------------------
def test_pf_state_evicts_departed_users():
    pf = ProportionalFairState(time_constant_subframes=10)
    pf.record({1: 1000, 2: 2000}, known_rntis={1, 2})
    assert pf.throughput_of(2) > 0.0
    # User 2 departs; its EWMA must be gone after a full time constant.
    for _ in range(25):
        pf.record({1: 1000}, known_rntis={1})
    assert pf.throughput_of(2) == 0.0
    assert pf.tracked_users() == 1


def test_pf_state_bounded_under_churn():
    """A revolving population leaves only recently-seen users behind."""
    pf = ProportionalFairState(time_constant_subframes=20)
    for step in range(2_000):
        rnti = step % 400  # 400 distinct users cycling through
        pf.record({rnti: 500}, known_rntis={rnti})
    # Bound: users seen within the last time constant, plus at most one
    # eviction period of slack before the next amortized sweep.
    assert pf.tracked_users() <= 2 * 20


def test_pf_returning_user_starts_fresh():
    pf = ProportionalFairState(time_constant_subframes=5)
    pf.record({9: 4000}, known_rntis={9})
    for _ in range(12):
        pf.record({}, known_rntis=set())
    assert pf.throughput_of(9) == 0.0
    pf.record({9: 800}, known_rntis={9})
    # Restarts from zero history, not the stale EWMA.
    assert pf.throughput_of(9) == (1.0 / 5) * 800


# ----------------------------------------------------------------------
# Event-heap compaction
# ----------------------------------------------------------------------
def test_pending_events_excludes_cancelled():
    sim = Simulator()
    events = [sim.schedule(10 + i, lambda: None) for i in range(20)]
    for event in events[::2]:
        event.cancel()
    assert sim.pending_events == 10


def test_heap_compacts_when_mostly_cancelled():
    sim = Simulator()
    events = [sim.schedule(1_000 + i, lambda: None) for i in range(600)]
    for event in events[:400]:
        event.cancel()
    # Compaction is amortized: corpses may linger only while they are
    # a minority of the (>=64-entry) heap.  Pre-PR all 400 stayed.
    assert sim.pending_events == 200
    dead = sim.queued_entries - sim.pending_events
    assert dead * 2 <= sim.queued_entries
    assert sim.queued_entries < 400


def test_compaction_preserves_fire_order():
    """Same timeline with and without cancellation-triggered compaction."""
    fired = []

    def build(n_cancel):
        sim = Simulator()
        order = []
        keep = []
        for i in range(300):
            # Deliberate time collisions exercise the seq tie-break.
            event = sim.schedule((i % 37) * 100, order.append, i)
            keep.append(event)
        for event in keep[:n_cancel]:
            event.cancel()
        sim.run()
        return order

    expected = [i for i in range(300) if i >= 200]
    baseline = build(200)       # triggers compaction (200/300 dead)
    assert baseline == sorted(
        expected, key=lambda i: ((i % 37) * 100, i))
    fired = build(200)
    assert fired == baseline


def test_compaction_mid_run_keeps_heap_alias_valid():
    """A callback that cancels enough events to trigger compaction must
    not desync the run loop (the compaction mutates the heap list in
    place)."""
    sim = Simulator()
    victims = [sim.schedule(5_000 + i, lambda: None) for i in range(200)]
    ran = []

    def massacre():
        for event in victims:
            event.cancel()

    sim.schedule(10, massacre)
    sim.schedule(20, ran.append, "after")
    sim.run()
    assert ran == ["after"]
    assert sim.pending_events == 0


def test_cancel_after_pop_does_not_corrupt_count():
    """Cancelling an event whose entry already left the heap must not
    skew the dead-entry accounting below zero."""
    sim = Simulator()
    event = sim.schedule(5, lambda: None)
    sim.run()
    event.cancel()  # already fired; owner cleared on pop
    assert sim.pending_events == 0
    sim.schedule(1, lambda: None)
    assert sim.pending_events == 1


# ----------------------------------------------------------------------
# Rolling-sum equivalence: CA manager
# ----------------------------------------------------------------------
def test_ca_rolling_sums_match_history_rescan():
    policy = CaPolicy(window=16, cooldown=5, deactivation_hold=8)
    manager = CarrierAggregationManager(policy)
    agg = AggregationState(configured=[0, 1])
    rng = random.Random(7)
    for subframe in range(400):
        manager.observe(subframe, 42, agg,
                        used_prbs=rng.randint(0, 50),
                        active_total_prbs=50 * agg.active_count,
                        backlogged=rng.random() < 0.6)
        state = manager.state_for(42)
        assert state.used_sum == sum(h[0] for h in state.history)
        assert state.total_sum == sum(h[1] for h in state.history)
        assert state.backlog_frames == sum(
            1 for h in state.history if h[2])


# ----------------------------------------------------------------------
# Rolling-sum equivalence: capacity estimator
# ----------------------------------------------------------------------
class _NaiveEstimator:
    """The pre-PR deque-and-rescan estimator, kept as the oracle."""

    def __init__(self, cap):
        self.samples = deque(maxlen=cap)

    def update(self, subframe, own_prbs, idle_prbs, own_rate, ber):
        self.samples.append((subframe, own_prbs, idle_prbs, own_rate,
                             ber))

    def estimate(self, window_subframes):
        window = list(self.samples)[-window_subframes:]
        n = len(window)
        mean_pa = sum(s[1] for s in window) / n
        mean_idle = sum(s[2] for s in window) / n
        mean_rate = sum(s[3] for s in window) / n
        mean_ber = sum(s[4] for s in window) / n
        span = max(1, window[-1][0] - window[0][0] + 1)
        coverage = min(1.0, n / span)
        return (mean_pa, mean_idle, mean_rate, mean_ber, coverage)


def _feed(est, naive, subframe, rng):
    own = rng.randint(0, 40)
    other = rng.randint(0, 50 - min(own, 50))
    record = SubframeRecord(subframe, 0, 100)
    if own:
        record.messages.append(DciMessage(
            subframe, 0, 1, own, 15, 2, tbs_bits=own * rng.randint(
                200, 900)))
    if other:
        record.messages.append(DciMessage(
            subframe, 0, 77, other, 10, 1, tbs_bits=other * 300))
    ber = rng.choice([0.0, 1e-6, 3.7e-5, 1.2e-4])
    est.update(record, own_rate_hint=rng.randint(100, 1_000),
               ber_hint=ber)
    sample = est.samples()[-1]
    naive.update(sample.subframe, sample.own_prbs, sample.idle_prbs,
                 sample.own_rate, sample.ber)


def test_estimator_bitwise_equal_to_naive_rescan():
    """Every figure the ring-buffer estimator returns must equal the
    naive windowed re-scan *bit for bit* (floats compared with ==)."""
    rng = random.Random(123)
    est = CellCapacityEstimator(cell_id=0, total_prbs=100, own_rnti=1)
    naive = _NaiveEstimator(CellCapacityEstimator.MAX_WINDOW)
    subframe = 0
    for step in range(1_200):  # 3x MAX_WINDOW: exercises overflow
        subframe += 1 if rng.random() < 0.8 else rng.randint(2, 30)
        _feed(est, naive, subframe, rng)
        for window in (1, 2, 7, 40, 399, 400):
            got = est.estimate(window)
            pa, idle, rate, ber, cov = naive.estimate(window)
            assert got.own_allocation == pa
            assert got.idle == idle
            assert got.mean_ber == ber
            assert got.coverage == cov
            # physical/fair recombine mean_rate with the user count;
            # verify the rate term via the fair-share identity.
            assert got.fair_share == rate * 100 / got.users


def test_estimator_memo_invalidated_by_update():
    est = CellCapacityEstimator(cell_id=0, total_prbs=100, own_rnti=1)
    rng = random.Random(5)
    naive = _NaiveEstimator(CellCapacityEstimator.MAX_WINDOW)
    _feed(est, naive, 1, rng)
    first = est.estimate(40)
    assert est.estimate(40) is first  # memo hit between updates
    _feed(est, naive, 2, rng)
    second = est.estimate(40)
    assert second is not first
    pa, idle, rate, ber, cov = naive.estimate(40)
    assert second.own_allocation == pa and second.mean_ber == ber


def test_estimator_samples_roundtrip():
    """samples() reconstructs the retained window from the rings."""
    est = CellCapacityEstimator(cell_id=0, total_prbs=50, own_rnti=3)
    for sf in range(450):
        record = SubframeRecord(sf, 0, 50)
        record.messages.append(DciMessage(
            sf, 0, 3, 1 + sf % 5, 10, 1, tbs_bits=(1 + sf % 5) * 100))
        est.update(record, own_rate_hint=100, ber_hint=float(sf))
    samples = est.samples()
    assert len(samples) == CellCapacityEstimator.MAX_WINDOW
    assert samples[0].subframe == 50 and samples[-1].subframe == 449
    assert samples[-1].own_prbs == 1 + 449 % 5
    assert samples[-1].ber == 449.0
