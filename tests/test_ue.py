"""Tests for the UE receive pipeline (reordering + corruption)."""

from repro.cell.queues import TransportBlock
from repro.cell.ue import UserEquipment
from repro.net.packet import Packet
from repro.net.sim import Simulator


def _tb(seq, completes=(), touches=None):
    tb = TransportBlock(seq=seq, rnti=1, cell_id=0, subframe=0, bits=1000,
                        n_prbs=1, mcs=10, spatial_streams=1)
    tb.completes = list(completes)
    tb.touches = list(touches if touches is not None else completes)
    return tb


def test_in_order_delivery_stamps_time():
    sim = Simulator()
    got = []
    ue = UserEquipment(sim, 1, on_packet=got.append)
    p = Packet(1, 0)
    sim.schedule(5_000, ue.receive_tb, _tb(0, [p]))
    sim.run()
    assert got == [p]
    assert p.recv_time_us == 5_000
    assert ue.delivered_packets == 1


def test_out_of_order_tbs_buffered():
    sim = Simulator()
    got = []
    ue = UserEquipment(sim, 1, on_packet=got.append)
    p0, p1 = Packet(1, 0), Packet(1, 1)
    ue.receive_tb(_tb(1, [p1]))
    assert got == []
    assert ue.reorder_depth == 1
    ue.receive_tb(_tb(0, [p0]))
    assert got == [p0, p1]
    assert ue.reorder_depth == 0


def test_abandoned_tb_drops_and_unblocks():
    sim = Simulator()
    got = []
    ue = UserEquipment(sim, 1, on_packet=got.append)
    lost = Packet(1, 0)
    later = Packet(1, 1)
    ue.receive_tb(_tb(1, [later]))
    ue.abandon_tb(_tb(0, [lost]))
    assert got == [later]
    assert ue.lost_packets == 1
    assert ue.abandoned_tbs == 1


def test_packet_spanning_abandoned_tb_is_corrupt():
    sim = Simulator()
    got = []
    ue = UserEquipment(sim, 1, on_packet=got.append)
    spanning = Packet(1, 5)
    # TB 0 carries part of `spanning` but is abandoned; TB 1 completes it.
    ue.abandon_tb(_tb(0, completes=[], touches=[spanning]))
    ue.receive_tb(_tb(1, completes=[spanning]))
    assert got == []
    assert ue.lost_packets == 1


def test_no_callback_is_fine():
    sim = Simulator()
    ue = UserEquipment(sim, 1, on_packet=None)
    ue.receive_tb(_tb(0, [Packet(1, 0)]))
    assert ue.delivered_packets == 1
