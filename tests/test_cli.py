"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.harness.runner import SCHEMES


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for scheme in SCHEMES:
        assert scheme in out
    for experiment in EXPERIMENTS:
        assert experiment in out


def test_run_command_executes_flow(capsys):
    assert main(["run", "--scheme", "bbr", "--duration", "1",
                 "--carriers", "1", "--sinr", "12"]) == 0
    out = capsys.readouterr().out
    assert "bbr" in out
    assert "tput" in out


def test_run_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        main(["run", "--scheme", "warp-drive"])


def test_compare_command(capsys):
    assert main(["compare", "--schemes", "bbr,cubic", "--duration",
                 "1", "--carriers", "1", "--sinr", "12"]) == 0
    out = capsys.readouterr().out
    assert "bbr" in out and "cubic" in out


def test_experiment_command_cheap(capsys):
    assert main(["experiment", "fig11"]) == 0
    out = capsys.readouterr().out
    assert "Figure 11" in out


def test_experiment_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_sweep_command_with_cache(capsys, tmp_path):
    args = ["sweep", "--schemes", "pbe,bbr", "--busy", "1", "--idle",
            "1", "--duration", "1", "--cache-dir",
            str(tmp_path / "cache"), "--save",
            str(tmp_path / "sweep.json")]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "Stationary sweep" in out
    assert "pbe" in out and "bbr" in out
    assert (tmp_path / "sweep.json").is_file()

    # warm-cache rerun: same table, no simulation (cached on stderr)
    assert main(args) == 0
    captured = capsys.readouterr()
    assert captured.out == out
    assert "cached" in captured.err


def test_sweep_command_table1_view(capsys):
    assert main(["sweep", "--schemes", "pbe,bbr,verus,copa", "--busy",
                 "1", "--idle", "1", "--duration", "1", "--view",
                 "table1"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_sweep_isolates_bad_scheme(capsys):
    # a poisoned configuration: the sweep still prints the good rows,
    # reports the failure on stderr, and exits non-zero
    assert main(["sweep", "--schemes", "bbr,warp-drive", "--busy", "1",
                 "--idle", "1", "--duration", "1"]) == 1
    captured = capsys.readouterr()
    assert "bbr" in captured.out
    assert "FAILED" in captured.err
    assert "warp-drive" in captured.err


def test_sweep_strict_aborts_on_bad_scheme():
    with pytest.raises(ValueError):
        main(["sweep", "--schemes", "bbr,warp-drive", "--busy", "1",
              "--idle", "1", "--duration", "1", "--strict"])


def test_sweep_failure_budget_exit_code():
    # every job fails, budget 10% -> circuit breaker (exit code 3)
    assert main(["sweep", "--schemes", "warp-drive", "--busy", "2",
                 "--idle", "1", "--duration", "1",
                 "--failure-budget", "10"]) == 3


def test_resume_requires_cache_dir():
    with pytest.raises(SystemExit, match="--cache-dir"):
        main(["sweep", "--schemes", "bbr", "--busy", "1", "--idle",
              "1", "--duration", "1", "--resume"])


def test_cache_verify_and_gc(capsys, tmp_path):
    cache = tmp_path / "cache"
    assert main(["sweep", "--schemes", "bbr", "--busy", "1", "--idle",
                 "1", "--duration", "1", "--cache-dir",
                 str(cache)]) == 0
    capsys.readouterr()

    assert main(["cache", "verify", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "checked 2 entries: 2 ok" in out
    assert "0 quarantined" in out

    # tamper with one entry: verify quarantines it and exits 1
    entry = next(cache.glob("??/*.json"))
    entry.write_text('{"broken json')
    assert main(["cache", "verify", "--cache-dir", str(cache)]) == 1
    out = capsys.readouterr().out
    assert "1 quarantined" in out
    assert (cache / "quarantine" / entry.name).is_file()

    # gc reclaims the quarantined bytes; verify is clean afterwards
    assert main(["cache", "gc", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "removed" in out and "reclaimed" in out
    assert not (cache / "quarantine" / entry.name).exists()
    assert main(["cache", "verify", "--cache-dir", str(cache)]) == 0
