"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.harness.runner import SCHEMES


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for scheme in SCHEMES:
        assert scheme in out
    for experiment in EXPERIMENTS:
        assert experiment in out


def test_run_command_executes_flow(capsys):
    assert main(["run", "--scheme", "bbr", "--duration", "1",
                 "--carriers", "1", "--sinr", "12"]) == 0
    out = capsys.readouterr().out
    assert "bbr" in out
    assert "tput" in out


def test_run_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        main(["run", "--scheme", "warp-drive"])


def test_compare_command(capsys):
    assert main(["compare", "--schemes", "bbr,cubic", "--duration",
                 "1", "--carriers", "1", "--sinr", "12"]) == 0
    out = capsys.readouterr().out
    assert "bbr" in out and "cubic" in out


def test_experiment_command_cheap(capsys):
    assert main(["experiment", "fig11"]) == 0
    out = capsys.readouterr().out
    assert "Figure 11" in out


def test_experiment_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])
