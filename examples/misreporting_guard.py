#!/usr/bin/env python3
"""Misreported feedback: the §7 server-side guard in action.

PBE-CC trusts the phone's capacity reports.  This demo runs two
connections: an honest PBE-CC client, and a malicious client whose
feedback always claims 500 Mbit/s regardless of the real capacity.
With the :class:`repro.core.FeedbackGuard` attached, the server
compares the reported capacity against its own BBR-style achieved-
throughput estimate (timestamps only, no client involvement) and caps
the flagged client near its measured rate — bounding the queue the
attack can build.

Run:  python examples/misreporting_guard.py
"""

from repro.core import FeedbackGuard, PbeFeedback
from repro.harness import Experiment, FlowSpec, Scenario
from repro.harness.report import format_table


def _lie_about_capacity(handle, rate_bps=500e6):
    """Monkey-patch a client to always report an inflated capacity."""
    original = handle.receiver.feedback_for

    def inflated(packet):
        feedback = original(packet)
        return PbeFeedback.from_rates(
            rate_bps, rate_bps, feedback.internet_bottleneck,
            feedback.carrier_activated)

    handle.receiver.feedback_for = inflated


DURATION_S = 16.0


def _run(malicious: bool, guarded: bool):
    scenario = Scenario(name="guard-demo", aggregated_cells=1,
                        mean_sinr_db=14.0, duration_s=DURATION_S,
                        seed=4)
    experiment = Experiment(scenario)
    cc_kwargs = {"guard": FeedbackGuard()} if guarded else {}
    handle = experiment.add_flow(FlowSpec(scheme="pbe",
                                          cc_kwargs=cc_kwargs))
    if malicious:
        _lie_about_capacity(handle)
    result = experiment.run()[0]
    flagged = bool(handle.cc.guard and handle.cc.guard.flagged)
    # Steady-state delay after the guard has had time to act (the
    # detector needs several seconds of consistent over-reporting).
    import numpy as np
    arrivals = np.asarray(result.stats.arrival_us)
    delays = np.asarray(result.stats.delay_us) / 1_000.0
    late = delays[arrivals > (DURATION_S - 5.0) * 1e6]
    late_p95 = float(np.percentile(late, 95)) if late.size else 0.0
    return result, flagged, late_p95


def main() -> None:
    rows = []
    for label, malicious, guarded in [
            ("honest client", False, True),
            ("malicious, no guard", True, False),
            ("malicious, guarded", True, True)]:
        result, flagged, late_p95 = _run(malicious, guarded)
        rows.append([label, result.summary.average_throughput_mbps,
                     late_p95, "yes" if flagged else "no"])
    print(format_table(
        ["client", "tput (Mbit/s)", "steady p95 delay (ms)", "flagged"],
        rows, title="§7 misreported-feedback guard (last 5 s of a "
                    f"{DURATION_S:.0f} s flow)"))
    print("\nThe guard cannot undo the startup queue, but once flagged"
          "\nthe malicious client is pinned near its real throughput "
          "and\nthe bottleneck queue drains.")


if __name__ == "__main__":
    main()
