#!/usr/bin/env python3
"""Handover: PBE-CC crossing a cell boundary mid-flow.

§1 of the paper singles out handover as a case where base-station-
centric designs (like ABC) would need to migrate state between towers,
while an endpoint-centric monitor just follows its phone.  This demo
hands the device over to a new primary cell (with a different channel
quality) in the middle of a download: the PBE monitor re-anchors on
the new cell's control channel and the sender re-converges within a
few RTTs, compared against BBR over the identical event.

Run:  python examples/handover.py
"""

import numpy as np

from repro.harness import Experiment, FlowSpec, Scenario
from repro.harness.report import format_table
from repro.phy.carrier import CarrierConfig
from repro.phy.channel import StaticChannel

HANDOVER_S = 3.0
DURATION_S = 6.0


def run(scheme: str):
    scenario = Scenario(
        name="handover",
        carriers=[CarrierConfig(0, 10.0), CarrierConfig(1, 10.0)],
        aggregated_cells=1, mean_sinr_db=18.0, duration_s=DURATION_S,
        seed=6)
    experiment = Experiment(scenario)
    # The device can decode both cells (union of its path).
    handle = experiment.add_flow(FlowSpec(scheme=scheme, cells=[0, 1]))
    experiment.network.user(100).agg.configured[:] = [0]
    experiment.schedule_handover(handle, at_s=HANDOVER_S,
                                 new_cells=[1],
                                 channel=StaticChannel(23.0))
    result = experiment.run()[0]

    arrivals = np.asarray(result.stats.arrival_us) / 1e6
    sizes = np.asarray(result.stats.size_bits)
    delays = np.asarray(result.stats.delay_us) / 1e3
    rows = []
    for lo in np.arange(0.0, DURATION_S, 0.5):
        mask = (arrivals >= lo) & (arrivals < lo + 0.5)
        rows.append([f"{lo:.1f}",
                     sizes[mask].sum() / 0.5 / 1e6,
                     float(np.median(delays[mask])) if mask.any()
                     else 0.0])
    return rows


def main() -> None:
    pbe_rows = run("pbe")
    bbr_rows = run("bbr")
    rows = [p + b[1:] for p, b in zip(pbe_rows, bbr_rows)]
    print(format_table(
        ["t (s)", "PBE tput", "PBE delay", "BBR tput", "BBR delay"],
        rows,
        title=f"Handover at t={HANDOVER_S:.0f}s to a stronger cell "
              f"(tput Mbit/s, median delay ms)"))
    print("\nThe ~40 ms handover gap dents both flows; PBE re-anchors "
          "its monitor\non the new cell and jumps straight to the new "
          "capacity.")


if __name__ == "__main__":
    main()
