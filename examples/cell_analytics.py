#!/usr/bin/env python3
"""Cell analytics: LTEye/OWL-style monitoring of a busy cell.

The same decoded control channel that powers PBE-CC's congestion
control also supports the passive monitoring tools the paper's related
work surveys (§2).  This demo watches a busy cell carrying a PBE-CC
flow plus background users and prints utilization timelines, the
heaviest users and HARQ statistics — then cross-checks the
BurstTracker bottleneck verdict against the PBE client's own state
machine.

Run:  python examples/cell_analytics.py
"""

from repro.harness import Experiment, FlowSpec, Scenario
from repro.harness.report import format_table
from repro.monitor import BurstTracker, OccupancyAnalyzer


def main() -> None:
    scenario = Scenario(name="analytics", aggregated_cells=1,
                        mean_sinr_db=17.0, busy=True,
                        background_users=4, duration_s=6.0, seed=18)
    experiment = Experiment(scenario)
    handle = experiment.add_flow(FlowSpec(scheme="pbe"))
    analyzer = OccupancyAnalyzer(0, bucket_subframes=500)
    tracker = BurstTracker(100)
    experiment.network.attach_monitor(0, analyzer.update)
    experiment.network.attach_monitor(0, tracker.update)
    result = experiment.run()[0]

    print(format_table(
        ["t (s)", "utilization %", "active users"],
        [[f"{i * 0.5:.1f}", 100 * u, n]
         for i, (u, n) in enumerate(zip(analyzer.utilization_series,
                                        analyzer.users_series))],
        title="Cell utilization per 500 ms bucket"))
    print()
    print(format_table(
        ["rnti", "mean PRBs", "active subframes", "retx", "Mbit total"],
        [[u.rnti, u.mean_prbs, u.subframes_active, u.retransmissions,
          u.total_bits / 1e6] for u in analyzer.top_users(5)],
        title="Top users by consumed PRBs"))
    summary = analyzer.summary()
    print(f"\ncell summary: {summary['distinct_users']} distinct users,"
          f" mean utilization {summary['mean_utilization']:.0%},"
          f" retx fraction {summary['retransmission_fraction']:.1%}")
    fractions = result.state_fractions
    print(f"BurstTracker verdict: {tracker.verdict()} "
          f"(PBE client: wireless {fractions['wireless']:.0%} of the "
          f"time) — the two independent signals agree.")


if __name__ == "__main__":
    main()
