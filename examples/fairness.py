#!/usr/bin/env python3
"""Fairness: three staggered flows sharing one primary cell.

Reproduces the paper's §6.4 setup (Figure 21): three phones share a
20 MHz primary cell; flows start at staggered times and end in reverse
order.  The script prints each flow's allocated PRBs over time and
Jain's fairness index during the overlap windows — including the RTT-
fairness variant with a 297 ms-RTT flow and the TCP-friendliness
variants against BBR and CUBIC.

Run:  python examples/fairness.py [time_scale]
      (time_scale 1.0 = the paper's full 60-second schedule)
"""

import sys

from repro.harness.experiments import run_fig21
from repro.harness.report import format_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    result = run_fig21(time_scale=scale)
    print(result.format())
    print()
    variant = result.variant("multi_user")
    rows = [[f"{t:.1f}"] + [f"{p:.1f}" for p in prbs]
            for t, *prbs in variant.timeline]
    print(format_table(
        ["t (s)", "flow 1 PRBs", "flow 2 PRBs", "flow 3 PRBs"], rows,
        title="Three PBE-CC flows: allocated primary-cell PRBs "
              "(cf. paper Figure 21a)"))


if __name__ == "__main__":
    main()
