#!/usr/bin/env python3
"""Bottleneck-state switching: wireless vs Internet bottleneck.

PBE-CC assumes the cellular link is the bottleneck and paces at the
measured wireless capacity; when the wired path is narrower it detects
the queue via the one-way-delay threshold (Dth = Dprop + 27 ms) and
falls back to its cellular-tailored BBR (§4.2.2-§4.2.3).  This script
runs the same flow against a wide and a narrow wired segment and
prints the resulting state residency and performance.

Run:  python examples/internet_bottleneck.py
"""

from repro.harness import Scenario, run_flow
from repro.harness.report import format_table


def main() -> None:
    cases = [
        ("wide wired path (1 Gbit/s)", 1e9),
        ("narrow wired path (20 Mbit/s)", 20e6),
    ]
    rows = []
    for label, rate in cases:
        scenario = Scenario(
            name="bottleneck-demo", aggregated_cells=2,
            mean_sinr_db=18.0, busy=False, internet_rate_bps=rate,
            internet_queue_packets=300, duration_s=6.0, seed=5)
        result = run_flow(scenario, "pbe")
        fractions = result.state_fractions
        rows.append([
            label,
            result.summary.average_throughput_mbps,
            result.summary.p95_delay_ms,
            f"{fractions['wireless']:.0%}",
            f"{fractions['internet']:.0%}",
        ])
    print(format_table(
        ["wired segment", "tput (Mbit/s)", "p95 delay (ms)",
         "wireless state", "internet state"],
        rows, title="PBE-CC bottleneck-state switching (§4.2.2)"))
    print("\nWith the narrow wired path the client flags the Internet "
          "bottleneck\nand the sender matches the wired rate via its "
          "capped BBR probing\n(Cprobe = min(1.25 BtlBw, Cf), Eqn. 7).")


if __name__ == "__main__":
    main()
