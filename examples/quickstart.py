#!/usr/bin/env python3
"""Quickstart: one PBE-CC flow over a simulated busy LTE cell.

Builds the full end-to-end path — content server, wired Internet
segment, base station with carrier aggregation, PBE monitor on the
phone — runs a 6-second download and prints what the paper reports:
average throughput, one-way delay statistics and the fraction of time
the connection was wireless- vs Internet-bottlenecked.

Run:  python examples/quickstart.py
"""

from repro.harness import Scenario, run_flow


def main() -> None:
    scenario = Scenario(
        name="quickstart",
        aggregated_cells=2,      # phone aggregates two carriers (MIX3)
        mean_sinr_db=18.0,       # indoor signal quality
        busy=True,               # daytime cell with background users
        background_users=4,
        duration_s=6.0,
        seed=1,
    )
    result = run_flow(scenario, "pbe")

    summary = result.summary
    print(f"scheme:            pbe (PBE-CC)")
    print(f"throughput:        {summary.average_throughput_mbps:.1f}"
          f" Mbit/s")
    print(f"one-way delay:     avg {summary.average_delay_ms:.1f} ms,"
          f" median {summary.median_delay_ms:.1f} ms,"
          f" p95 {summary.p95_delay_ms:.1f} ms")
    print(f"packets delivered: {summary.packets}"
          f" (lost {result.lost_packets})")
    print(f"carrier activations: {result.ca_activations}")
    fractions = result.state_fractions
    print(f"bottleneck states: wireless {fractions['wireless']:.1%},"
          f" internet {fractions['internet']:.1%}")


if __name__ == "__main__":
    main()
