#!/usr/bin/env python3
"""Trace-driven evaluation: record a cell, replay it Mahimahi-style.

The original Sprout/Verus evaluations — and the Pantheon toolchain the
paper uses — run congestion controllers over *recorded* cellular
capacity traces.  This demo closes that loop inside the simulator:

1. saturate a busy cell and record the served-capacity trace off the
   decoded control channel (what a Mahimahi `cellsim` recording does),
2. save it in the Mahimahi packet-delivery-opportunity format,
3. replay it through a :class:`repro.traces.TraceLink` and run the
   end-to-end schemes over the identical capacity process.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.baselines import AckingReceiver, Sender
from repro.harness import Experiment, FlowSpec, Scenario, make_cc
from repro.harness.report import format_table
from repro.net.link import DelayPipe
from repro.net.sim import Simulator
from repro.phy.carrier import CarrierConfig
from repro.traces import CapacityTrace, TraceLink


def record_trace() -> CapacityTrace:
    scenario = Scenario(name="record",
                        carriers=[CarrierConfig(0, 10.0)],
                        aggregated_cells=1, mean_sinr_db=15.0,
                        busy=True, background_users=3,
                        duration_s=6.0, seed=14)
    experiment = Experiment(scenario)
    experiment.add_flow(FlowSpec(scheme="cubic"))  # saturates the cell
    records = []
    experiment.network.attach_monitor(0, records.append)
    experiment.run()
    return CapacityTrace.from_served_records(records[500:], rnti=100)


def replay(trace: CapacityTrace, scheme: str) -> list:
    sim = Simulator()
    link = TraceLink(sim, None, trace, delay_us=20_000)
    sender = Sender(sim, 1, make_cc(scheme), egress=link)
    receiver = AckingReceiver(sim, 1, DelayPipe(sim, sender, 20_000))
    link.sink = receiver
    link.start()
    sender.start()
    sim.run(until_us=6_000_000)
    stats = receiver.stats
    delays = sorted(stats.delays_ms())
    p95 = delays[int(0.95 * len(delays))] if delays else 0.0
    return [scheme, stats.average_throughput_bps() / 1e6, p95]


def main() -> None:
    print("recording a busy 10 MHz cell...", flush=True)
    trace = record_trace()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "busy_cell.trace"
        trace.save(path)
        lines = path.read_text().count("\n")
        print(f"saved {path.name}: {len(trace)} ms, "
              f"{trace.mean_bps / 1e6:.1f} Mbit/s mean, "
              f"{lines} delivery opportunities (Mahimahi format)\n")
        trace = CapacityTrace.load(path)

    rows = [replay(trace, scheme)
            for scheme in ("bbr", "cubic", "copa", "vegas", "sprout")]
    rows.sort(key=lambda r: -r[1])
    print(format_table(
        ["scheme", "tput (Mbit/s)", "p95 delay (ms)"], rows,
        title="Trace-driven replay over the recorded cell"))
    print("\n(PBE-CC itself cannot run trace-driven: its whole point "
          "is the\nlive control-channel feed that a capacity trace "
          "throws away.)")


if __name__ == "__main__":
    main()
