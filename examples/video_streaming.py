#!/usr/bin/env python3
"""Application-limited traffic: a video stream beside a bulk download.

The paper's Figure 5 walks through what happens when one user's flow
is rate-limited by its application: the limited user keeps only the
PRBs it needs, and the other users detect the idle capacity within a
couple of subframes and absorb it.  This demo runs an adaptive-bitrate
style video flow (application-capped, stepping through bitrates) next
to a full-buffer PBE-CC download on the same cell and shows the
download instantly soaking up whatever the video leaves free.

Run:  python examples/video_streaming.py
"""

import numpy as np

from repro.harness import Experiment, FlowSpec, Scenario
from repro.harness.report import format_table
from repro.phy.carrier import CarrierConfig

#: The "ABR ladder": (time_s, video bitrate bps).
LADDER = [(0.0, 4e6), (2.0, 10e6), (4.0, 2e6), (6.0, 16e6)]
DURATION_S = 8.0


def main() -> None:
    scenario = Scenario(name="video",
                        carriers=[CarrierConfig(0, 10.0)],
                        aggregated_cells=1, mean_sinr_db=17.0,
                        fading_std_db=0.5, duration_s=DURATION_S,
                        seed=10)
    experiment = Experiment(scenario)
    video = experiment.add_flow(FlowSpec(scheme="pbe", rnti=100,
                                         app_rate_bps=LADDER[0][1]))
    bulk = experiment.add_flow(FlowSpec(scheme="pbe", rnti=101))
    for at_s, rate in LADDER[1:]:
        experiment.sim.schedule(
            int(at_s * 1e6),
            lambda r=rate: setattr(video.sender, "app_rate_bps", r))
    results = experiment.run()

    def series(result):
        arrivals = np.asarray(result.stats.arrival_us)
        sizes = np.asarray(result.stats.size_bits)
        out = []
        for lo in np.arange(0.0, DURATION_S, 0.5):
            mask = (arrivals >= lo * 1e6) & (arrivals < (lo + 0.5) * 1e6)
            out.append(sizes[mask].sum() / 0.5 / 1e6)
        return out

    video_series, bulk_series = series(results[0]), series(results[1])
    rows = []
    for i, (v, b) in enumerate(zip(video_series, bulk_series)):
        rows.append([f"{i * 0.5:.1f}", v, b, v + b])
    print(format_table(
        ["t (s)", "video (Mbit/s)", "bulk (Mbit/s)", "total"],
        rows, title="ABR video vs PBE-CC bulk download on one cell "
                    "(cf. paper Figure 5)"))
    print("\nWhenever the video steps its bitrate down, the bulk flow's"
          "\nmonitor sees the freed PRBs and the download absorbs them "
          "within\na feedback round trip — and yields them back when "
          "the video\nsteps up.")


if __name__ == "__main__":
    main()
