#!/usr/bin/env python3
"""Head-to-head: all eight congestion controllers on one location.

Reproduces the paper's §6.3.1 methodology at a single busy indoor
location with two aggregated carriers: each scheme gets the identical
cell, channel and background traffic (same seed), and the script
prints the Figure 13-style comparison plus who triggered carrier
aggregation.

Run:  python examples/compare_schemes.py [duration_seconds]
"""

import sys

from repro.harness import Scenario, run_flow
from repro.harness.report import format_table

SCHEMES = ("pbe", "bbr", "cubic", "verus", "sprout", "copa", "pcc",
           "vivace")


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 6.0
    scenario = Scenario(
        name="indoor-busy-2cc", aggregated_cells=2, mean_sinr_db=17.0,
        busy=True, background_users=4, duration_s=duration, seed=2)

    rows = []
    for scheme in SCHEMES:
        result = run_flow(scenario, scheme)
        summary = result.summary
        rows.append([
            scheme,
            summary.average_throughput_mbps,
            summary.median_delay_ms,
            summary.p95_delay_ms,
            result.lost_packets,
            "yes" if result.ca_activations else "no",
        ])
        print(f"  ran {scheme}...")

    rows.sort(key=lambda r: -r[1])
    print()
    print(format_table(
        ["scheme", "tput (Mbit/s)", "median delay (ms)",
         "p95 delay (ms)", "lost pkts", "CA triggered"],
        rows, title=f"Busy indoor cell, 2 carriers, {duration:.0f}s "
                    f"flows (cf. paper Figures 13 and 15)"))


if __name__ == "__main__":
    main()
