#!/usr/bin/env python3
"""Mobility: PBE-CC vs BBR while the phone walks away and back.

Reproduces the paper's §6.3.2 drill-down (Figure 17): the phone holds
at −85 dBm, moves to −105 dBm, returns quickly, and holds again.  The
script prints per-interval median throughput and delay for both
schemes — PBE tracks the capacity down *and* up with a flat delay
profile, while BBR's estimate lags and its queue bloats.

Run:  python examples/mobility.py [duration_seconds]
"""

import sys

from repro.harness.experiments import run_fig16_17
from repro.harness.report import format_table


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 20.0
    result = run_fig16_17(schemes=("pbe", "bbr"),
                          timeline_schemes=("pbe", "bbr"),
                          duration_s=duration,
                          interval_s=duration / 20.0)

    pbe = next(t for t in result.timelines if t.scheme == "pbe")
    bbr = next(t for t in result.timelines if t.scheme == "bbr")
    rows = []
    for i in range(len(pbe.throughput_mbps)):
        rows.append([
            f"{i * pbe.interval_s:.1f}",
            pbe.throughput_mbps[i], pbe.delay_ms[i],
            bbr.throughput_mbps[i], bbr.delay_ms[i],
        ])
    print(format_table(
        ["t (s)", "PBE tput", "PBE delay", "BBR tput", "BBR delay"],
        rows, title="Mobility trajectory (tput Mbit/s, median delay "
                    "ms) — cf. paper Figure 17"))
    print()
    for scheme in ("pbe", "bbr"):
        s = result.summaries[scheme]
        print(f"{scheme}: {s.average_throughput_mbps:.1f} Mbit/s, "
              f"p95 delay {s.p95_delay_ms:.0f} ms")


if __name__ == "__main__":
    main()
