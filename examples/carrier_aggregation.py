#!/usr/bin/env python3
"""Carrier aggregation: watch the network add and remove a cell.

Reproduces the paper's Figure 2: a fixed 40 Mbit/s offered load
overloads the 5 MHz primary carrier, so the network activates the
secondary carrier about 130 ms in; when the sender drops to 6 Mbit/s
the secondary is deactivated again.  The script prints the PRB/delay
timeline and the exact activation events.

Run:  python examples/carrier_aggregation.py
"""

from repro.harness.experiments import run_fig02


def main() -> None:
    result = run_fig02()
    print(result.format())
    print()
    print(f"activation:   t = {result.activation_s:.3f} s "
          f"(paper: ~0.13 s)")
    print(f"deactivation: t = {result.deactivation_s:.3f} s "
          f"(rate dropped at t = 2 s)")
    print(f"queue peak:   {result.peak_delay_ms:.0f} ms, steady "
          f"{result.steady_delay_ms:.0f} ms")


if __name__ == "__main__":
    main()
